(* Undo-log fuzzing: random interleaved transactional reads, writes and
   aborts checked against a shadow store that only sees committed state.
   Any slip in the scratch-array undo log (ordering, truncation, reuse
   across transactions) shows up as a read returning the wrong value or as
   post-abort memory differing from the shadow. *)

open Htm_sim

let machine = { Machine.zec12 with name = "fuzz"; n_cores = 4; smt = 1 }
let n_ctx = 4
let region_lines = 12
let region_cells = region_lines * machine.Machine.line_cells

type oracle = {
  shadow : int array;  (* committed values, region-relative *)
  pend : (int, int) Hashtbl.t array;  (* ctx -> uncommitted writes *)
  in_txn : bool array;  (* driver's view; synced after every op *)
}

(* Any transaction the engine killed since the last sync loses its
   uncommitted writes. *)
let sync_aborts htm o =
  for c = 0 to n_ctx - 1 do
    if o.in_txn.(c) && not (Htm.in_txn htm c) then begin
      Hashtbl.reset o.pend.(c);
      o.in_txn.(c) <- false;
      Htm.clear_pending_abort htm c
    end
  done

let expected o ctx off =
  match Hashtbl.find_opt o.pend.(ctx) off with
  | Some v -> v
  | None -> o.shadow.(off)

let check_region step store region o =
  for off = 0 to region_cells - 1 do
    if Store.get store (region + off) <> o.shadow.(off) then
      Alcotest.failf
        "step %d: store[%d] = %d but the shadow (committed state) has %d" step
        off
        (Store.get store (region + off))
        o.shadow.(off)
  done

let run_fuzz ?(hot = true) ~seed ~steps () =
  let prng = Prng.create seed in
  let store = Store.create ~dummy:0 ~line_cells:machine.Machine.line_cells 64 in
  let htm = Htm.create machine store in
  Htm.set_hot htm hot;
  let region = Store.reserve_aligned store region_cells in
  for ctx = 0 to n_ctx - 1 do
    Htm.set_occupied htm ctx true
  done;
  let o =
    {
      shadow = Array.make region_cells 0;
      pend = Array.init n_ctx (fun _ -> Hashtbl.create 64);
      in_txn = Array.make n_ctx false;
    }
  in
  let abort_all () =
    for ctx = 0 to n_ctx - 1 do
      if Htm.in_txn htm ctx then (
        try Htm.tabort htm ~ctx Explicit with Htm.Abort_now _ -> ())
    done;
    sync_aborts htm o
  in
  for step = 1 to steps do
    let ctx = Prng.int prng n_ctx in
    if Htm.pending_abort htm ctx <> None then Htm.clear_pending_abort htm ctx;
    let off = Prng.int prng region_cells in
    let v = Prng.int prng 10_000 in
    let roll = Prng.int prng 100 in
    if o.in_txn.(ctx) then begin
      if roll < 35 then begin
        match Htm.read htm ~ctx (region + off) with
        | got ->
            (* own pending write wins; everyone else's got rolled back
               before the read returned *)
            let want = expected o ctx off in
            sync_aborts htm o;
            if got <> want then
              Alcotest.failf "step %d: ctx %d read %d at %d, expected %d" step
                ctx got off want
        | exception Htm.Abort_now _ -> sync_aborts htm o
      end
      else if roll < 80 then begin
        (match Htm.write htm ~ctx (region + off) v with
        | () -> Hashtbl.replace o.pend.(ctx) off v
        | exception Htm.Abort_now _ -> ());
        sync_aborts htm o
      end
      else if roll < 92 then begin
        Htm.tend htm ~ctx;
        Hashtbl.iter (fun off v -> o.shadow.(off) <- v) o.pend.(ctx);
        Hashtbl.reset o.pend.(ctx);
        o.in_txn.(ctx) <- false;
        sync_aborts htm o
      end
      else begin
        (try Htm.tabort htm ~ctx Explicit with Htm.Abort_now _ -> ());
        sync_aborts htm o
      end
    end
    else if roll < 40 then begin
      Htm.tbegin htm ~ctx ~rollback:(fun _ -> ());
      o.in_txn.(ctx) <- true
    end
    else if roll < 70 then begin
      let got = Htm.read htm ~ctx (region + off) in
      sync_aborts htm o;
      if got <> o.shadow.(off) then
        Alcotest.failf "step %d: non-txn read %d at %d, expected %d" step got
          off o.shadow.(off)
    end
    else begin
      Htm.write htm ~ctx (region + off) v;
      sync_aborts htm o;
      o.shadow.(off) <- v
    end;
    (* periodically stop the world and compare memory exactly *)
    if step mod 1_000 = 0 then begin
      abort_all ();
      check_region step store region o
    end
  done;
  abort_all ();
  check_region steps store region o;
  Htm.stats htm

let test_fuzz () =
  List.iter
    (fun seed -> ignore (run_fuzz ~seed ~steps:10_000 ()))
    [ 11; 22; 33 ]

(* The memoized fast paths must not change a single observable decision:
   the same fuzz schedule run with BENCH_HOT on and off (same seed, same
   PRNG stream) has to produce identical engine statistics — including
   every abort class — on top of the shadow-store check both runs already
   passed. *)
let test_fuzz_hot_parity () =
  List.iter
    (fun seed ->
      let on = Stats.to_assoc (run_fuzz ~hot:true ~seed ~steps:10_000 ())
      and off = Stats.to_assoc (run_fuzz ~hot:false ~seed ~steps:10_000 ()) in
      List.iter2
        (fun (k, v_on) (k', v_off) ->
          assert (k = k');
          Alcotest.(check int)
            (Printf.sprintf "seed %d: %s identical hot on/off" seed k)
            v_off v_on)
        on off)
    [ 11; 22; 33 ]

(* Repeated writes to the same address inside one transaction: the undo log
   holds one entry per write, and the newest-first replay must restore the
   pre-transaction value, not an intermediate one. *)
let test_multi_write_same_addr () =
  let store = Store.create ~dummy:0 ~line_cells:machine.Machine.line_cells 256 in
  let htm = Htm.create machine store in
  let a = Store.reserve_aligned store 64 in
  Htm.set_occupied htm 0 true;
  Store.set store a 7;
  Htm.tbegin htm ~ctx:0 ~rollback:(fun _ -> ());
  Htm.write htm ~ctx:0 a 100;
  Htm.write htm ~ctx:0 a 200;
  Htm.write htm ~ctx:0 a 300;
  Alcotest.(check int) "reads last write" 300 (Htm.read htm ~ctx:0 a);
  (try Htm.tabort htm ~ctx:0 Explicit with Htm.Abort_now _ -> ());
  Alcotest.(check int) "abort restores the pre-txn value" 7 (Store.get store a)

(* Steady state must not allocate: after a warmup transaction has grown the
   scratch arrays, further transactional accesses touch only preallocated
   int arrays. The budget absorbs the boxed floats Gc.minor_words returns. *)
let test_zero_alloc_steady_state () =
  let store = Store.create ~dummy:0 ~line_cells:machine.Machine.line_cells 4096 in
  let htm = Htm.create machine store in
  let region = Store.reserve_aligned store 1024 in
  Htm.set_occupied htm 0 true;
  let txns = 500 and writes = 64 in
  let loop () =
    for _ = 1 to txns do
      Htm.tbegin htm ~ctx:0 ~rollback:(fun _ -> ());
      for i = 0 to writes - 1 do
        Htm.write htm ~ctx:0 (region + (i * 8)) i
      done;
      for i = 0 to writes - 1 do
        ignore (Htm.read htm ~ctx:0 (region + (i * 8)))
      done;
      Htm.tend htm ~ctx:0
    done
  in
  loop ();
  let w0 = Gc.minor_words () in
  loop ();
  let w1 = Gc.minor_words () in
  let per_access = (w1 -. w0) /. float_of_int (txns * writes * 2) in
  if per_access > 0.01 then
    Alcotest.failf "transactional accesses allocate: %.5f minor words each"
      per_access

let suite =
  [
    Alcotest.test_case "fuzz: shadow-store oracle" `Quick test_fuzz;
    Alcotest.test_case "fuzz: identical stats with BENCH_HOT on/off" `Quick
      test_fuzz_hot_parity;
    Alcotest.test_case "multi-write same address rollback" `Quick
      test_multi_write_same_addr;
    Alcotest.test_case "zero allocation in steady state" `Quick
      test_zero_alloc_steady_state;
  ]
