(* Inline-cache behaviour: the Section 4.4 changes (fill-once method caches,
   ivar-table-equality guards) must preserve semantics at polymorphic sites
   and across inheritance. *)

let poly_src =
  {|class A
  def tag
    "a"
  end
end
class B
  def tag
    "b"
  end
end
# one polymorphic call site, alternating receivers
objs = [A.new, B.new, A.new, B.new, A.new]
out = ""
objs.each { |o| out << o.tag }
puts out|}

let test_polymorphic_site () =
  List.iter
    (fun opts ->
      Alcotest.(check string) "alternating receivers" "ababa\n"
        (Tutil.output ~opts poly_src))
    [
      Rvm.Options.default;
      (* original CRuby: refill on every miss, class-equality guard *)
      { Rvm.Options.default with cache_fill_once = false };
      { Rvm.Options.default with ivar_guard = Rvm.Options.Class_equality };
    ]

let test_inherited_ivar_guard () =
  (* a subclass without its own ivars shares the parent's ivar table: the
     table-equality guard may reuse the cache, the class guard may not —
     both must read the right slots *)
  let src =
    {|class Base
  def initialize(v)
    @v = v
  end
  def v
    @v
  end
end
class Derived < Base
end
objs = [Base.new(1), Derived.new(2), Base.new(3), Derived.new(4)]
total = 0
objs.each { |o| total += o.v }
puts total|}
  in
  List.iter
    (fun guard ->
      Alcotest.(check string)
        (match guard with
        | Rvm.Options.Class_equality -> "class guard"
        | Rvm.Options.Table_equality -> "table guard")
        "10\n"
        (Tutil.output ~opts:{ Rvm.Options.default with ivar_guard = guard } src))
    [ Rvm.Options.Class_equality; Rvm.Options.Table_equality ]

let test_subclass_with_own_ivars () =
  (* once the subclass adds an ivar the layouts diverge: the table guard
     must stop sharing *)
  Tutil.check_output "diverged layouts" "7/9\n"
    {|class P
  def initialize
    @a = 7
  end
  def a
    @a
  end
end
class Q < P
  def initialize
    @a = 9
    @b = 1
  end
end
puts "#{P.new.a}/#{Q.new.a}"|}

let test_method_cache_under_htm () =
  (* shared inline caches filled concurrently: all threads get right answers *)
  Tutil.check_output ~scheme:Core.Scheme.Htm_dynamic "concurrent cache fill"
    "30\n"
    {|class W
  def ten
    10
  end
end
total = [0]
m = Mutex.new
ths = []
t = 0
while t < 3
  ths << Thread.new do
    w = W.new
    m.synchronize { total[0] += w.ten }
  end
  t += 1
end
ths.each { |th| th.join }
puts total[0]|}

let test_attr_cache_slots () =
  (* attr_accessor getters/setters carry their own cache slots *)
  Tutil.check_output "attrs across instances" "5 6\n"
    {|class Pt
  attr_accessor :x
end
a = Pt.new
b = Pt.new
a.x = 5
b.x = 6
puts "#{a.x} #{b.x}"|}

(* Compiled-tier guard deoptimization: a hot block whose send site keeps
   missing the fill-once inline cache (one site, alternating receiver
   classes) must count [deopt.guard] samples while staying semantically
   identical to the reference interpreter — megamorphic dispatch falls
   back to the full lookup, never to a stale target. *)
let test_compiled_guard_deopt () =
  let src =
    {|class A
  def tag
    1
  end
end
class B
  def tag
    2
  end
end
objs = []
i = 0
while i < 200
  if i % 2 == 0
    objs << A.new
  else
    objs << B.new
  end
  i += 1
end
s = 0
objs.each { |o| s += o.tag }
puts s|}
  in
  let run interp =
    let cfg =
      Core.Runner.config ~scheme:Core.Scheme.Gil_only ~interp
        Htm_sim.Machine.zec12
    in
    Core.Runner.run_source cfg ~source:src
  in
  let c = run Core.Runner.Interp_compiled in
  let r = run Core.Runner.Interp_ref in
  Alcotest.(check string) "sum across receivers" "300\n" c.Core.Runner.output;
  Alcotest.(check string) "ref tier agrees" r.Core.Runner.output
    c.Core.Runner.output;
  Alcotest.(check int) "same instruction stream" r.Core.Runner.total_insns
    c.Core.Runner.total_insns;
  let count name =
    (Obs.Metrics.counter c.Core.Runner.metrics name).Obs.Metrics.count
  in
  Alcotest.(check bool) "hot blocks compiled" true (count "compile.blocks" > 0);
  Alcotest.(check bool)
    "cache misses sampled as guard deopts" true
    (count "deopt.guard" > 0)

let suite =
  [
    Alcotest.test_case "polymorphic site, all cache policies" `Quick
      test_polymorphic_site;
    Alcotest.test_case "compiled tier: guard deopt at megamorphic site" `Quick
      test_compiled_guard_deopt;
    Alcotest.test_case "inherited ivar guards" `Quick test_inherited_ivar_guard;
    Alcotest.test_case "diverged subclass layouts" `Quick
      test_subclass_with_own_ivars;
    Alcotest.test_case "concurrent cache fill under HTM" `Quick
      test_method_cache_under_htm;
    Alcotest.test_case "attr cache slots" `Quick test_attr_cache_slots;
  ]
