(* Guest-language semantics: golden outputs for single-threaded programs run
   on the full pipeline (parse -> compile -> interpret on the simulator). *)

let check = Tutil.check_output

let test_arith () =
  check "integer arithmetic" "7\n-3\n10\n2\n1\n8\n"
    "puts 2 + 5\nputs 2 - 5\nputs 2 * 5\nputs 12 / 5\nputs 13 % 4\nputs 2 ** 3";
  check "ruby floor division" "-3\n2\n-2\n"
    "puts(-12 / 5)\nputs(-13 % 5)\nputs(13 % -5)";
  check "float arithmetic" "3.5\n1.25\n7.5\n"
    "puts 1.5 + 2.0\nputs 2.5 / 2\nputs 3 * 2.5";
  check "mixed comparison" "true\nfalse\ntrue\n" "puts 1 < 1.5\nputs 2.0 > 3\nputs 2 == 2.0"

let test_strings () =
  check "concat and length" "hello world\n11\n"
    {|s = "hello" + " " + "world"
puts s
puts s.length|};
  check "string methods" "HI\nhi\ntrue\n3\nlo wo\n"
    {|s = "hi"
puts s.upcase
puts "HI".downcase
puts "hello".include?("ell")
puts "hello".index("lo")
puts "hello world".slice(3, 5)|};
  check "split and join" "a-b-c\n3\n"
    {|parts = "a b c".split(" ")
puts parts.join("-")
puts parts.length|};
  check "append" "abc!\n" {|s = "abc"
s << "!"
puts s|};
  check "to_i to_f" "42\n-7\n3.5\n0\n"
    {|puts "42".to_i
puts "-7x".to_i
puts "3.5".to_f
puts "".to_i|}

let test_arrays () =
  check "literals and indexing" "1\n30\n\n3\n"
    {|a = [1, 20, 30]
puts a[0]
puts a[-1]
puts a[9]
puts a.length|};
  check "push pop shift" "4\n9\n1\n2\n"
    {|a = [1, 2, 3]
a << 9
puts a.length
puts a.pop
puts a.shift
puts a.length|};
  check "growth via assignment" "10\nnil check\n7\n"
    {|a = []
a[9] = 7
puts a.length
puts "nil check" if a[5] == nil
puts a[9]|};
  check "iteration helpers" "6\n3\n[2, 4, 6]\n"
    {|a = [1, 2, 3]
puts a.sum
puts a.max
p a.map { |x| x * 2 }|};
  check "sort" "[1, 2, 3]\n" "p [3, 1, 2].sort"

let test_hashes () =
  check "basic" "1\n2\n\ntrue\nfalse\n2\n"
    {|h = { :a => 1, "b" => 2 }
puts h[:a]
puts h["b"]
puts h[:missing]
puts h.key?(:a)
puts h.key?(:c)
puts h.size|};
  check "update and delete" "9\n1\n"
    {|h = {}
h[:x] = 9
puts h[:x]
h.delete(:x)
h[:y] = 1
puts h.size|};
  check "many keys force rehash" "100\n4950\n"
    {|h = {}
i = 0
while i < 100
  h[i] = i
  i += 1
end
puts h.size
s = 0
h.each { |k, v| s += v }
puts s|}

let test_control_flow () =
  check "if chain" "mid\n"
    {|x = 5
if x < 3
  puts "low"
elsif x < 8
  puts "mid"
else
  puts "high"
end|};
  check "while with break/next" "1\n3\n5\n7\n"
    {|i = 0
while true
  i += 1
  break if i > 8
  next if i % 2 == 0
  puts i
end|};
  check "until" "3\n" {|x = 0
until x == 3
  x += 1
end
puts x|};
  (* nil prints as an empty line, like Ruby's puts *)
  check "ternary and logic" "yes\n2\n\n"
    {|puts(1 < 2 ? "yes" : "no")
puts(nil || 2)
puts(nil && 2)|}

let test_methods () =
  check "recursion" "120\n"
    {|def fact(n)
  if n <= 1
    1
  else
    n * fact(n - 1)
  end
end
puts fact(5)|};
  check "implicit return of last expr" "3\n"
    {|def pick(a, b)
  if a > b
    a
  else
    b
  end
end
puts pick(1, 3)|};
  check "early return" "neg\n"
    {|def sign(x)
  return "neg" if x < 0
  "pos"
end
puts sign(-4)|}

let test_blocks_and_yield () =
  check "yield with value" "1\n4\n9\n"
    {|def each_square(n)
  i = 1
  while i <= n
    yield i * i
    i += 1
  end
end
each_square(3) { |sq| puts sq }|};
  check "block return value" "25\n"
    {|def apply(x)
  yield x
end
puts apply(5) { |v| v * v }|};
  check "closure over locals" "15\n"
    {|total = 0
[1, 2, 3, 4, 5].each { |x| total += x }
puts total|};
  check "break from block" "2\n"
    {|r = [1, 2, 3, 4].each do |x|
  break x if x == 2
end
puts r|};
  check "iterator prelude methods" "0123\n10\n"
    {|4.times { |i| print i }
puts ""
puts (1..4).to_a.sum|}

let test_classes () =
  check "instance state" "3\n4\n"
    {|class Counter
  def initialize(start)
    @n = start
  end
  def bump
    @n += 1
  end
  def value
    @n
  end
end
c = Counter.new(2)
c.bump
puts c.value
c.bump
puts c.value|};
  check "attr_accessor" "7\n9\n"
    {|class Box
  attr_accessor :v
end
b = Box.new
b.v = 7
puts b.v
b.v = 9
puts b.v|};
  check "inheritance and override" "generic\nwoof\n"
    {|class Animal
  def speak
    "generic"
  end
end
class Dog < Animal
  def speak
    "woof"
  end
end
puts Animal.new.speak
puts Dog.new.speak|};
  check "operator methods" "5\n"
    {|class Vec
  def initialize(x)
    @x = x
  end
  def +(o)
    Vec.new(@x + o.x)
  end
  def x
    @x
  end
end
puts (Vec.new(2) + Vec.new(3)).x|};
  check "class variables" "2\n"
    {|class Reg
  def initialize
    @@count = 0 if @@count == nil
    @@count += 1
  end
  def count
    @@count
  end
end
Reg.new
r = Reg.new
puts r.count|}

let test_globals_consts () =
  check "globals" "10\n" {|$g = 10
def read_g
  $g
end
puts read_g|};
  check "constants" "99\n" {|LIMIT = 99
puts LIMIT|};
  check "math module" "3.0\n1.0\n"
    {|puts Math.sqrt(9.0)
puts Math.exp(0.0)|}

let test_ranges () =
  check "range basics" "1\n10\n10\n"
    {|r = (1..10)
puts r.first
puts r.last
puts r.size|};
  check "exclusive each" "012\n"
    {|(0...3).each { |i| print i }
puts ""|}

let test_errors () =
  (try
     ignore (Tutil.output "undefined_method_xyz(3)");
     Alcotest.fail "expected failure"
   with Core.Runner.Guest_failure m ->
     Alcotest.(check bool) "mentions method" true
       (String.length m > 0));
  try
    ignore (Tutil.output "puts 1 / 0");
    Alcotest.fail "expected division failure"
  with Core.Runner.Guest_failure _ -> ()

let test_interpolation () =
  check "basic interpolation" "hello world!\n"
    {|name = "world"
puts "hello #{name}!"|};
  check "expressions inside" "6 * 7 = 42\n"
    {|x = 6
puts "#{x} * 7 = #{x * 7}"|};
  check "method calls inside" "len=3 sum=6\n"
    {|a = [1, 2, 3]
puts "len=#{a.length} sum=#{a.sum}"|};
  check "escaped hash" "not #{interp}\n" {|puts "not \#{interp}"|};
  check "interpolation in assignment" "ab3c\n"
    {|n = 3
s = "ab#{n}c"
puts s|}

let test_case_when () =
  check "multi-value when" "five\n"
    {|x = 5
case x
when 1, 2
  puts "small"
when 5
  puts "five"
else
  puts "other"
end|};
  check "strings and fallthrough" "2\ndone\n"
    {|s = "b"
case s
when "a" then puts 1
when "b" then puts 2
end
case 99
when 1 then puts "no"
end
puts "done"|};
  check "case with else" "other\n"
    {|case 42
when 1 then puts "one"
else
  puts "other"
end|};
  check "case subject evaluated once" "match\n1\n"
    {|calls = [0]
def subject(c)
  c[0] += 1
  7
end
case subject(calls)
when 1, 2, 3, 4, 5, 6 then puts "no"
when 7 then puts "match"
end
puts calls[0]|}

let test_output_formats () =
  check "float formatting" "1.0\n3.14\n-0.5\n"
    "puts 1.0\nputs 3.14\nputs(-0.5)";
  check "p inspect" "\"s\"\n[1, \"x\", nil]\n:sym\n"
    {|p "s"
p [1, "x", nil]
p :sym|};
  check "print" "abc\n" {|print "a", "b", "c"
puts ""|}

(* The CPython-style small-int intern table behind [Value.vint]. *)
let test_small_int_interning () =
  (* cached range returns the same box every time — physical equality *)
  Alcotest.(check bool) "0 interned" true (Rvm.Value.vint 0 == Rvm.Value.vint 0);
  Alcotest.(check bool) "min boundary interned" true
    (Rvm.Value.vint Rvm.Value.small_int_min == Rvm.Value.vint Rvm.Value.small_int_min);
  Alcotest.(check bool) "max boundary interned" true
    (Rvm.Value.vint Rvm.Value.small_int_max == Rvm.Value.vint Rvm.Value.small_int_max);
  (* structural correctness across the whole range, boundaries included *)
  List.iter
    (fun n ->
      match Rvm.Value.vint n with
      | Rvm.Value.VInt v -> Alcotest.(check int) (string_of_int n) n v
      | _ -> Alcotest.fail "vint did not build a VInt")
    [
      Rvm.Value.small_int_min - 1; Rvm.Value.small_int_min; -1; 0; 1; 255;
      Rvm.Value.small_int_max; Rvm.Value.small_int_max + 1; max_int; min_int;
    ];
  (* outside the range: fresh boxes, still correct *)
  let big = Rvm.Value.small_int_max + 1 in
  Alcotest.(check bool) "outside range not interned" false
    (Rvm.Value.vint big == Rvm.Value.vint big);
  Alcotest.(check bool) "outside range equal" true
    (Rvm.Value.vint big = Rvm.Value.vint big)

(* Sharing interned ints must be unobservable to guests: mutating a
   container cell that held an interned value cannot leak anywhere else,
   because mutation rebinds cells rather than mutating int boxes. *)
let test_interning_unobservable () =
  check "container mutation does not alias" "7\n1\n1\n"
    {|a = [1, 1]
b = [1]
a[0] = 7
puts a[0]
puts a[1]
puts b[0]|};
  check "arithmetic on shared small ints" "3\n2\n1\n"
    {|x = 1
y = x + 1
z = y + 1
puts z
puts y
puts x|}

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "small-int interning" `Quick test_small_int_interning;
    Alcotest.test_case "interning unobservable" `Quick test_interning_unobservable;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "hashes" `Quick test_hashes;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "methods" `Quick test_methods;
    Alcotest.test_case "blocks and yield" `Quick test_blocks_and_yield;
    Alcotest.test_case "classes" `Quick test_classes;
    Alcotest.test_case "globals, consts, Math" `Quick test_globals_consts;
    Alcotest.test_case "ranges" `Quick test_ranges;
    Alcotest.test_case "runtime errors" `Quick test_errors;
    Alcotest.test_case "string interpolation" `Quick test_interpolation;
    Alcotest.test_case "case/when" `Quick test_case_when;
    Alcotest.test_case "output formats" `Quick test_output_formats;
  ]
