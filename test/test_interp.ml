(* Guest-language semantics: golden outputs for single-threaded programs run
   on the full pipeline (parse -> compile -> interpret on the simulator). *)

let check = Tutil.check_output

let test_arith () =
  check "integer arithmetic" "7\n-3\n10\n2\n1\n8\n"
    "puts 2 + 5\nputs 2 - 5\nputs 2 * 5\nputs 12 / 5\nputs 13 % 4\nputs 2 ** 3";
  check "ruby floor division" "-3\n2\n-2\n"
    "puts(-12 / 5)\nputs(-13 % 5)\nputs(13 % -5)";
  check "float arithmetic" "3.5\n1.25\n7.5\n"
    "puts 1.5 + 2.0\nputs 2.5 / 2\nputs 3 * 2.5";
  check "mixed comparison" "true\nfalse\ntrue\n" "puts 1 < 1.5\nputs 2.0 > 3\nputs 2 == 2.0"

let test_strings () =
  check "concat and length" "hello world\n11\n"
    {|s = "hello" + " " + "world"
puts s
puts s.length|};
  check "string methods" "HI\nhi\ntrue\n3\nlo wo\n"
    {|s = "hi"
puts s.upcase
puts "HI".downcase
puts "hello".include?("ell")
puts "hello".index("lo")
puts "hello world".slice(3, 5)|};
  check "split and join" "a-b-c\n3\n"
    {|parts = "a b c".split(" ")
puts parts.join("-")
puts parts.length|};
  check "append" "abc!\n" {|s = "abc"
s << "!"
puts s|};
  check "to_i to_f" "42\n-7\n3.5\n0\n"
    {|puts "42".to_i
puts "-7x".to_i
puts "3.5".to_f
puts "".to_i|}

let test_arrays () =
  check "literals and indexing" "1\n30\n\n3\n"
    {|a = [1, 20, 30]
puts a[0]
puts a[-1]
puts a[9]
puts a.length|};
  check "push pop shift" "4\n9\n1\n2\n"
    {|a = [1, 2, 3]
a << 9
puts a.length
puts a.pop
puts a.shift
puts a.length|};
  check "growth via assignment" "10\nnil check\n7\n"
    {|a = []
a[9] = 7
puts a.length
puts "nil check" if a[5] == nil
puts a[9]|};
  check "iteration helpers" "6\n3\n[2, 4, 6]\n"
    {|a = [1, 2, 3]
puts a.sum
puts a.max
p a.map { |x| x * 2 }|};
  check "sort" "[1, 2, 3]\n" "p [3, 1, 2].sort"

let test_hashes () =
  check "basic" "1\n2\n\ntrue\nfalse\n2\n"
    {|h = { :a => 1, "b" => 2 }
puts h[:a]
puts h["b"]
puts h[:missing]
puts h.key?(:a)
puts h.key?(:c)
puts h.size|};
  check "update and delete" "9\n1\n"
    {|h = {}
h[:x] = 9
puts h[:x]
h.delete(:x)
h[:y] = 1
puts h.size|};
  check "many keys force rehash" "100\n4950\n"
    {|h = {}
i = 0
while i < 100
  h[i] = i
  i += 1
end
puts h.size
s = 0
h.each { |k, v| s += v }
puts s|}

let test_control_flow () =
  check "if chain" "mid\n"
    {|x = 5
if x < 3
  puts "low"
elsif x < 8
  puts "mid"
else
  puts "high"
end|};
  check "while with break/next" "1\n3\n5\n7\n"
    {|i = 0
while true
  i += 1
  break if i > 8
  next if i % 2 == 0
  puts i
end|};
  check "until" "3\n" {|x = 0
until x == 3
  x += 1
end
puts x|};
  (* nil prints as an empty line, like Ruby's puts *)
  check "ternary and logic" "yes\n2\n\n"
    {|puts(1 < 2 ? "yes" : "no")
puts(nil || 2)
puts(nil && 2)|}

let test_methods () =
  check "recursion" "120\n"
    {|def fact(n)
  if n <= 1
    1
  else
    n * fact(n - 1)
  end
end
puts fact(5)|};
  check "implicit return of last expr" "3\n"
    {|def pick(a, b)
  if a > b
    a
  else
    b
  end
end
puts pick(1, 3)|};
  check "early return" "neg\n"
    {|def sign(x)
  return "neg" if x < 0
  "pos"
end
puts sign(-4)|}

let test_blocks_and_yield () =
  check "yield with value" "1\n4\n9\n"
    {|def each_square(n)
  i = 1
  while i <= n
    yield i * i
    i += 1
  end
end
each_square(3) { |sq| puts sq }|};
  check "block return value" "25\n"
    {|def apply(x)
  yield x
end
puts apply(5) { |v| v * v }|};
  check "closure over locals" "15\n"
    {|total = 0
[1, 2, 3, 4, 5].each { |x| total += x }
puts total|};
  check "break from block" "2\n"
    {|r = [1, 2, 3, 4].each do |x|
  break x if x == 2
end
puts r|};
  check "iterator prelude methods" "0123\n10\n"
    {|4.times { |i| print i }
puts ""
puts (1..4).to_a.sum|}

let test_classes () =
  check "instance state" "3\n4\n"
    {|class Counter
  def initialize(start)
    @n = start
  end
  def bump
    @n += 1
  end
  def value
    @n
  end
end
c = Counter.new(2)
c.bump
puts c.value
c.bump
puts c.value|};
  check "attr_accessor" "7\n9\n"
    {|class Box
  attr_accessor :v
end
b = Box.new
b.v = 7
puts b.v
b.v = 9
puts b.v|};
  check "inheritance and override" "generic\nwoof\n"
    {|class Animal
  def speak
    "generic"
  end
end
class Dog < Animal
  def speak
    "woof"
  end
end
puts Animal.new.speak
puts Dog.new.speak|};
  check "operator methods" "5\n"
    {|class Vec
  def initialize(x)
    @x = x
  end
  def +(o)
    Vec.new(@x + o.x)
  end
  def x
    @x
  end
end
puts (Vec.new(2) + Vec.new(3)).x|};
  check "class variables" "2\n"
    {|class Reg
  def initialize
    @@count = 0 if @@count == nil
    @@count += 1
  end
  def count
    @@count
  end
end
Reg.new
r = Reg.new
puts r.count|}

let test_globals_consts () =
  check "globals" "10\n" {|$g = 10
def read_g
  $g
end
puts read_g|};
  check "constants" "99\n" {|LIMIT = 99
puts LIMIT|};
  check "math module" "3.0\n1.0\n"
    {|puts Math.sqrt(9.0)
puts Math.exp(0.0)|}

let test_ranges () =
  check "range basics" "1\n10\n10\n"
    {|r = (1..10)
puts r.first
puts r.last
puts r.size|};
  check "exclusive each" "012\n"
    {|(0...3).each { |i| print i }
puts ""|}

let test_errors () =
  (try
     ignore (Tutil.output "undefined_method_xyz(3)");
     Alcotest.fail "expected failure"
   with Core.Runner.Guest_failure m ->
     Alcotest.(check bool) "mentions method" true
       (String.length m > 0));
  try
    ignore (Tutil.output "puts 1 / 0");
    Alcotest.fail "expected division failure"
  with Core.Runner.Guest_failure _ -> ()

let test_interpolation () =
  check "basic interpolation" "hello world!\n"
    {|name = "world"
puts "hello #{name}!"|};
  check "expressions inside" "6 * 7 = 42\n"
    {|x = 6
puts "#{x} * 7 = #{x * 7}"|};
  check "method calls inside" "len=3 sum=6\n"
    {|a = [1, 2, 3]
puts "len=#{a.length} sum=#{a.sum}"|};
  check "escaped hash" "not #{interp}\n" {|puts "not \#{interp}"|};
  check "interpolation in assignment" "ab3c\n"
    {|n = 3
s = "ab#{n}c"
puts s|}

let test_case_when () =
  check "multi-value when" "five\n"
    {|x = 5
case x
when 1, 2
  puts "small"
when 5
  puts "five"
else
  puts "other"
end|};
  check "strings and fallthrough" "2\ndone\n"
    {|s = "b"
case s
when "a" then puts 1
when "b" then puts 2
end
case 99
when 1 then puts "no"
end
puts "done"|};
  check "case with else" "other\n"
    {|case 42
when 1 then puts "one"
else
  puts "other"
end|};
  check "case subject evaluated once" "match\n1\n"
    {|calls = [0]
def subject(c)
  c[0] += 1
  7
end
case subject(calls)
when 1, 2, 3, 4, 5, 6 then puts "no"
when 7 then puts "match"
end
puts calls[0]|}

let test_output_formats () =
  check "float formatting" "1.0\n3.14\n-0.5\n"
    "puts 1.0\nputs 3.14\nputs(-0.5)";
  check "p inspect" "\"s\"\n[1, \"x\", nil]\n:sym\n"
    {|p "s"
p [1, "x", nil]
p :sym|};
  check "print" "abc\n" {|print "a", "b", "c"
puts ""|}

(* The CPython-style small-int intern table behind [Value.vint]. *)
let test_small_int_interning () =
  (* cached range returns the same box every time — physical equality *)
  Alcotest.(check bool) "0 interned" true (Rvm.Value.vint 0 == Rvm.Value.vint 0);
  Alcotest.(check bool) "min boundary interned" true
    (Rvm.Value.vint Rvm.Value.small_int_min == Rvm.Value.vint Rvm.Value.small_int_min);
  Alcotest.(check bool) "max boundary interned" true
    (Rvm.Value.vint Rvm.Value.small_int_max == Rvm.Value.vint Rvm.Value.small_int_max);
  (* structural correctness across the whole range, boundaries included *)
  List.iter
    (fun n ->
      match Rvm.Value.vint n with
      | Rvm.Value.VInt v -> Alcotest.(check int) (string_of_int n) n v
      | _ -> Alcotest.fail "vint did not build a VInt")
    [
      Rvm.Value.small_int_min - 1; Rvm.Value.small_int_min; -1; 0; 1; 255;
      Rvm.Value.small_int_max; Rvm.Value.small_int_max + 1; max_int; min_int;
    ];
  (* outside the range: fresh boxes, still correct *)
  let big = Rvm.Value.small_int_max + 1 in
  Alcotest.(check bool) "outside range not interned" false
    (Rvm.Value.vint big == Rvm.Value.vint big);
  Alcotest.(check bool) "outside range equal" true
    (Rvm.Value.vint big = Rvm.Value.vint big)

(* Sharing interned ints must be unobservable to guests: mutating a
   container cell that held an interned value cannot leak anywhere else,
   because mutation rebinds cells rather than mutating int boxes. *)
let test_interning_unobservable () =
  check "container mutation does not alias" "7\n1\n1\n"
    {|a = [1, 1]
b = [1]
a[0] = 7
puts a[0]
puts a[1]
puts b[0]|};
  check "arithmetic on shared small ints" "3\n2\n1\n"
    {|x = 1
y = x + 1
z = y + 1
puts z
puts y
puts x|}

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "small-int interning" `Quick test_small_int_interning;
    Alcotest.test_case "interning unobservable" `Quick test_interning_unobservable;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "hashes" `Quick test_hashes;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "methods" `Quick test_methods;
    Alcotest.test_case "blocks and yield" `Quick test_blocks_and_yield;
    Alcotest.test_case "classes" `Quick test_classes;
    Alcotest.test_case "globals, consts, Math" `Quick test_globals_consts;
    Alcotest.test_case "ranges" `Quick test_ranges;
    Alcotest.test_case "runtime errors" `Quick test_errors;
    Alcotest.test_case "string interpolation" `Quick test_interpolation;
    Alcotest.test_case "case/when" `Quick test_case_when;
    Alcotest.test_case "output formats" `Quick test_output_formats;
  ]

(* ---- opt_* arithmetic edges (the fused paths must not change these) ---- *)

let test_arith_edges () =
  check "floor division negative operands" "-4\n-4\n3\n3\n"
    "puts(-7 / 2)\nputs(7 / -2)\nputs(-7 / -2)\nputs(7 / 2)";
  check "ruby modulo sign follows divisor" "2\n-2\n-1\n1\n0\n"
    "puts(-7 % 3)\nputs(7 % -3)\nputs(-7 % -3)\nputs(7 % 3)\nputs(-9 % 3)";
  check "pow positive, zero, negative exponent" "8\n1\n0.25\n1.0\n"
    "puts 2 ** 3\nputs 2 ** 0\nputs 2 ** -2\nputs 1 ** -5";
  check "pow mixed float" "6.25\n0.5\n" "puts 2.5 ** 2\nputs 4 ** -0.5";
  check "mixed float int opt paths" "3.5\n-1.5\n5.0\n0.5\n1.5\n"
    "puts 1.5 + 2\nputs 0.5 - 2\nputs 2 * 2.5\nputs 1 / 2.0\nputs 3.5 % 2";
  check "opt fallback to send on objects" "5\n"
    {|class V
  def initialize(x)
    @x = x
  end
  def +(o)
    @x + o.raw
  end
  def raw
    @x
  end
end
puts V.new(2) + V.new(3)|};
  (try
     ignore (Tutil.output "puts 5 % 0");
     Alcotest.fail "expected modulo-by-zero failure"
   with Core.Runner.Guest_failure m ->
     Alcotest.(check bool) "mod by zero message" true
       (String.length m > 0));
  try
    ignore (Tutil.output "puts(-3 / 0)");
    Alcotest.fail "expected division-by-zero failure"
  with Core.Runner.Guest_failure _ -> ()

(* ---- pre-decode consistency: Dcode must mirror the tagged world ------- *)

module C = Rvm.Compiler
module Val = Rvm.Value

let mk_code insns =
  {
    Val.code_name = "<test>";
    uid = Val.fresh_code_uid ();
    kind = Val.Toplevel;
    arity = 0;
    nlocals = 4;
    insns;
  }

(* Every code record reachable from a compiled program, main included. *)
let codes_of source =
  let acc = ref [] in
  let rec walk (code : Val.code) =
    acc := code :: !acc;
    Array.iter
      (fun (insn : Val.insn) ->
        match insn with
        | Val.Defmethod (_, c) -> walk c
        | Val.Defclass cd -> List.iter (fun (_, c) -> walk c) cd.Val.cd_methods
        | Val.Send s | Val.Newthread s | Val.Newinstance s ->
            Option.iter walk s.Val.ss_block
        | _ -> ())
      code.Val.insns
  in
  walk (C.compile_string source).Val.main;
  !acc

let decode_corpus =
  {|def work(n)
  i = 0
  acc = 0
  while i < n
    acc = acc + i
    i += 1
  end
  acc
end
class Box
  attr_accessor :v
  def initialize
    @v = [1, 2, 3]
  end
  def pick(k)
    @v[k]
  end
end
b = Box.new
puts work(10) + b.pick(1)
puts "s" + "t"
h = { :a => 1 }
h[:b] = 2
puts h.size|}

let test_decode_consistency () =
  List.iter
    (fun (code : Val.code) ->
      let d = C.decode code in
      Array.iteri
        (fun pc insn ->
          let name = Printf.sprintf "%s@%d" code.Val.code_name pc in
          Alcotest.(check bool)
            (name ^ ": yield_orig")
            (Core.Yield_points.original_point insn)
            (Bytes.get d.C.Dcode.yield_orig pc = '\001');
          Alcotest.(check bool)
            (name ^ ": yield_ext")
            (Core.Yield_points.extended_point insn)
            (Bytes.get d.C.Dcode.yield_ext pc = '\001');
          (* the cost class must reproduce Bytecode.base_cost under every
             machine's cost table *)
          List.iter
            (fun (m : Htm_sim.Machine.t) ->
              let c = m.costs in
              let tbl =
                [|
                  c.cyc_insn;
                  c.cyc_insn + c.cyc_send;
                  c.cyc_insn + (10 * c.cyc_send);
                  c.cyc_insn + c.cyc_alloc;
                  4 * c.cyc_insn;
                |]
              in
              Alcotest.(check int)
                (name ^ ": base cost")
                (Rvm.Bytecode.base_cost c insn)
                tbl.(d.C.Dcode.cost.(pc)))
            [ Htm_sim.Machine.zec12; Htm_sim.Machine.xeon_e3 ])
        code.Val.insns)
    (codes_of decode_corpus)

(* The runner's cost table is the same mapping (guards the create-time
   table against [Bytecode.base_cost] drift). *)
let test_runner_cost_tbl () =
  let cfg = Core.Runner.config Htm_sim.Machine.zec12 in
  let t = Core.Runner.create cfg ~source:"nil" in
  let c = Htm_sim.Machine.zec12.costs in
  List.iter
    (fun (insn, cls) ->
      Alcotest.(check int)
        (Printf.sprintf "class %d" cls)
        (Rvm.Bytecode.base_cost c insn)
        t.Core.Runner.cost_tbl.(cls))
    [
      (Val.Nop, C.cost_class_of Val.Nop);
      ( Val.Send { ss_sym = 0; ss_argc = 0; ss_block = None; ss_cache = 0 },
        C.cost_class_of
          (Val.Send { ss_sym = 0; ss_argc = 0; ss_block = None; ss_cache = 0 })
      );
      ( Val.Newthread { ss_sym = 0; ss_argc = 0; ss_block = None; ss_cache = 0 },
        C.cost_class_of
          (Val.Newthread
             { ss_sym = 0; ss_argc = 0; ss_block = None; ss_cache = 0 }) );
      (Val.Newarray 2, C.cost_class_of (Val.Newarray 2));
      (Val.Defclass
         {
           cd_name = 0;
           cd_super = None;
           cd_methods = [];
           cd_attrs = [];
         },
       C.cost_class_of
         (Val.Defclass
            { cd_name = 0; cd_super = None; cd_methods = []; cd_attrs = [] }));
    ]

let test_fusion_patterns () =
  let site = { Val.ss_sym = 0; ss_argc = 0; ss_block = None; ss_cache = 0 } in
  (* getlocal; getlocal; opt_plus; setlocal *)
  let d1 =
    C.decode
      (mk_code
         [|
           Val.Getlocal (0, 0); Val.Getlocal (1, 0); Val.Opt_plus;
           Val.Setlocal (0, 0); Val.Leave;
         |])
  in
  Alcotest.(check int) "local-arith head len" 5 d1.C.Dcode.fuse.(0);
  Alcotest.(check int) "local-arith kind" C.Dcode.fuse_local_arith
    d1.C.Dcode.fuse_kind.(0);
  (* getlocal; push; opt_lt; branchunless *)
  let d2 =
    C.decode
      (mk_code
         [|
           Val.Getlocal (0, 0); Val.Push (Val.vint 10); Val.Opt_lt;
           Val.Branchunless 6; Val.Nop; Val.Jump 0; Val.Leave;
         |])
  in
  Alcotest.(check int) "cmp-branch head len" 4 d2.C.Dcode.fuse.(0);
  Alcotest.(check int) "cmp-branch kind" C.Dcode.fuse_cmp_branch
    d2.C.Dcode.fuse_kind.(0);
  (* getinstancevariable; opt_aref *)
  let d3 =
    C.decode
      (mk_code [| Val.Getivar (0, 0); Val.Opt_aref; Val.Leave |])
  in
  Alcotest.(check int) "ivar-aref head len" 3 d3.C.Dcode.fuse.(0);
  Alcotest.(check int) "ivar-aref kind" C.Dcode.fuse_ivar_aref
    d3.C.Dcode.fuse_kind.(0);
  (* putself; send *)
  let d4 =
    C.decode (mk_code [| Val.Pushself; Val.Send site; Val.Leave |])
  in
  Alcotest.(check int) "self-send head len" 3 d4.C.Dcode.fuse.(0);
  Alcotest.(check int) "self-send kind" C.Dcode.fuse_self_send
    d4.C.Dcode.fuse_kind.(0);
  (* a generic opcode breaks the run *)
  let d5 =
    C.decode
      (mk_code [| Val.Push (Val.vint 1); Val.Newarray 1; Val.Pop; Val.Leave |])
  in
  Alcotest.(check int) "generic breaks run" 0 d5.C.Dcode.fuse.(0);
  Alcotest.(check int) "tail after generic fuses" 2 d5.C.Dcode.fuse.(2);
  Alcotest.(check int) "plain run kind" C.Dcode.fuse_straight
    d5.C.Dcode.fuse_kind.(2);
  (* single non-fusable instruction: no head *)
  let d6 = C.decode (mk_code [| Val.Jump 0 |]) in
  Alcotest.(check int) "lone branch no head" 0 d6.C.Dcode.fuse.(0)

(* Opcode ids are load-bearing: [Interp.step_d] dispatches on the literal
   ints, so pin [opcode_of] to the published constants. *)
let test_opcode_ids () =
  let site = { Val.ss_sym = 0; ss_argc = 0; ss_block = None; ss_cache = 0 } in
  List.iter
    (fun (insn, expect) ->
      Alcotest.(check int) "opcode id" expect (C.opcode_of insn))
    [
      (Val.Nop, C.Dcode.op_nop);
      (Val.Push Val.VNil, C.Dcode.op_push);
      (Val.Pushself, C.Dcode.op_pushself);
      (Val.Getlocal (3, 0), C.Dcode.op_getlocal0);
      (Val.Getlocal (3, 2), C.Dcode.op_getlocal);
      (Val.Setlocal (1, 0), C.Dcode.op_setlocal0);
      (Val.Setlocal (1, 1), C.Dcode.op_setlocal);
      (Val.Getivar (0, 0), C.Dcode.op_getivar);
      (Val.Jump 0, C.Dcode.op_jump);
      (Val.Branchunless 0, C.Dcode.op_branchunless);
      (Val.Leave, C.Dcode.op_leave);
      (Val.Opt_plus, C.Dcode.op_opt_plus);
      (Val.Opt_pow, C.Dcode.op_opt_pow);
      (Val.Opt_aref, C.Dcode.op_opt_aref);
      (Val.Send site, C.Dcode.op_send);
      (Val.Newarray 1, C.Dcode.op_generic);
      (Val.Newthread site, C.Dcode.op_generic);
      (Val.Defmethod (0, mk_code [| Val.Leave |]), C.Dcode.op_generic);
    ]

(* ---- differential: threaded tier vs the reference switch loop --------- *)

let assert_same_tier name (a : Core.Runner.result) (b : Core.Runner.result) =
  Alcotest.(check int) (name ^ ": wall_cycles") b.wall_cycles a.wall_cycles;
  Alcotest.(check int) (name ^ ": total_insns") b.total_insns a.total_insns;
  Alcotest.(check string) (name ^ ": output") b.output a.output;
  Alcotest.(check int)
    (name ^ ": gil acquisitions")
    b.gil_acquisitions a.gil_acquisitions;
  Alcotest.(check int)
    (name ^ ": txn begins")
    b.htm_stats.Htm_sim.Stats.begins a.htm_stats.Htm_sim.Stats.begins;
  Alcotest.(check int)
    (name ^ ": txn commits")
    b.htm_stats.Htm_sim.Stats.commits a.htm_stats.Htm_sim.Stats.commits;
  Alcotest.(check int)
    (name ^ ": txn conflict aborts")
    b.htm_stats.Htm_sim.Stats.aborts_conflict
    a.htm_stats.Htm_sim.Stats.aborts_conflict;
  Alcotest.(check int)
    (name ^ ": txn accesses")
    b.htm_stats.Htm_sim.Stats.txn_accesses a.htm_stats.Htm_sim.Stats.txn_accesses;
  Alcotest.(check int)
    (name ^ ": stm begins")
    b.stm_stats.Stm.begins a.stm_stats.Stm.begins;
  Alcotest.(check int)
    (name ^ ": stm commits")
    b.stm_stats.Stm.commits a.stm_stats.Stm.commits;
  Alcotest.(check int) (name ^ ": gc runs") b.gc_runs a.gc_runs;
  Alcotest.(check int) (name ^ ": allocs") b.allocs a.allocs;
  Alcotest.(check int)
    (name ^ ": requests completed")
    b.requests_completed a.requests_completed

let run_tier ~interp ~scheme ?(threads = 1) source =
  ignore threads;
  let cfg = Core.Runner.config ~scheme ~interp Htm_sim.Machine.zec12 in
  Core.Runner.run_source cfg ~source

(* Single-VM guest corpus under every scheme the figures use. *)
let tier_corpus =
  [
    ("loop", "i = 0\ns = 0\nwhile i < 200\n  s += i\n  i += 1\nend\nputs s");
    ( "methods+ivars",
      {|class Acc
  def initialize
    @xs = []
    @n = 0
  end
  def add(v)
    @xs << v
    @n += 1
    self
  end
  def mean
    @xs.sum / @n
  end
end
a = Acc.new
i = 0
while i < 50
  a.add(i * 3)
  i += 1
end
puts a.mean|} );
    ( "strings+hash",
      {|h = {}
i = 0
while i < 40
  h["k#{i % 7}"] = i
  i += 1
end
puts h.size
puts h["k3"]|} );
    ( "threads+mutex",
      {|m = Mutex.new
total = 0
ts = []
t = 0
while t < 4
  ts << Thread.new do
    i = 0
    while i < 100
      m.synchronize { total += 1 }
      i += 1
    end
  end
  t += 1
end
ts.each { |th| th.join }
puts total|} );
    ( "defmethod-invalidation",
      {|def f
  1
end
puts f
def f
  2
end
puts f|} );
  ]

let test_tier_corpus () =
  List.iter
    (fun (name, source) ->
      List.iter
        (fun scheme ->
          let nm =
            Printf.sprintf "%s/%s" name (Core.Scheme.to_string scheme)
          in
          let thr =
            run_tier ~interp:Core.Runner.Interp_threaded ~scheme source
          and cmp =
            run_tier ~interp:Core.Runner.Interp_compiled ~scheme source
          and ref_ = run_tier ~interp:Core.Runner.Interp_ref ~scheme source in
          assert_same_tier (nm ^ " (threaded)") thr ref_;
          assert_same_tier (nm ^ " (compiled)") cmp ref_)
        [
          Core.Scheme.Gil_only; Core.Scheme.Htm_dynamic; Core.Scheme.Hybrid;
          Core.Scheme.Fine_grained;
        ])
    tier_corpus

let run_workload ~interp ~scheme (w : Workloads.Workload.t) ~threads =
  let source = w.Workloads.Workload.source ~threads ~size:Workloads.Size.Test in
  let cfg = Core.Runner.config ~scheme ~interp Htm_sim.Machine.zec12 in
  Core.Runner.run_source ~setup:(w.Workloads.Workload.setup None) cfg ~source

let test_tier_workloads () =
  let workloads =
    Workloads.Workload.micro
    @ List.filter
        (fun (w : Workloads.Workload.t) -> w.name = "cg" || w.name = "is")
        Workloads.Workload.npb
  in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      List.iter
        (fun scheme ->
          List.iter
            (fun threads ->
              let name =
                Printf.sprintf "%s/%s/%dT" w.name
                  (Core.Scheme.to_string scheme)
                  threads
              in
              let thr =
                run_workload ~interp:Core.Runner.Interp_threaded ~scheme w
                  ~threads
              and cmp =
                run_workload ~interp:Core.Runner.Interp_compiled ~scheme w
                  ~threads
              and ref_ =
                run_workload ~interp:Core.Runner.Interp_ref ~scheme w ~threads
              in
              assert_same_tier (name ^ " (threaded)") thr ref_;
              assert_same_tier (name ^ " (compiled)") cmp ref_)
            [ 1; 2; 4 ])
        [ Core.Scheme.Gil_only; Core.Scheme.Htm_dynamic; Core.Scheme.Hybrid ])
    workloads

(* The BENCH_INTERP environment default, as the smoke script and CI use it;
   the server path also exercises netsim delivery under the threaded tier. *)
let test_tier_env_default () =
  let w = Option.get (Workloads.Workload.find "webrick") in
  let run v =
    Unix.putenv "BENCH_INTERP" v;
    Fun.protect
      ~finally:(fun () -> Unix.putenv "BENCH_INTERP" "")
      (fun () ->
        let o =
          Harness.Exp.run
            (Harness.Exp.point ~workload:w ~machine:Htm_sim.Machine.xeon_e3
               ~scheme:Core.Scheme.Htm_dynamic ~threads:3
               ~size:Workloads.Size.Test ())
        in
        o.Harness.Exp.result)
  in
  let dflt = run "" and thr = run "threaded" and ref_ = run "ref" in
  Alcotest.(check bool) "served requests" true (dflt.requests_completed > 0);
  assert_same_tier "webrick/htm-dynamic/3c (env default=compiled)" dflt ref_;
  assert_same_tier "webrick/htm-dynamic/3c (env threaded)" thr ref_

(* ---- randomized-program fuzz across tiers ----------------------------- *)

(* A tiny terminating program generator: straight-line arithmetic over
   three locals, bounded counted loops, conditionals, array/hash traffic.
   Programs can still take guest-level errors (coercion) — both tiers must
   then fail with the same message. *)
let gen_program =
  let open QCheck.Gen in
  let var = oneofl [ "a"; "b"; "c" ] in
  let atom =
    oneof
      [ map string_of_int (int_range (-9) 9); var;
        map (fun f -> Printf.sprintf "%.1f" f) (float_bound_inclusive 9.0) ]
  in
  let op = oneofl [ "+"; "-"; "*"; "/"; "%"; "**" ] in
  let expr =
    oneof
      [
        atom;
        (let* x = atom and* o = op and* y = atom in
         (* keep literal zero out of the divisor slot; a variable divisor
            can still be zero at run time, which is part of the test *)
         let y = if (o = "/" || o = "%") && y = "0" then "1" else y in
         return (Printf.sprintf "(%s %s %s)" x o y));
      ]
  in
  let stmt =
    oneof
      [
        (let* v = var and* e = expr in
         return (Printf.sprintf "%s = %s" v e));
        (let* v = var and* e = expr in
         return (Printf.sprintf "%s += %s" v e));
        (let* e = expr and* v = var in
         return (Printf.sprintf "if %s < %s\n  %s = %s + 1\nelse\n  %s = 0\nend" v e v v v));
        (let* n = int_range 1 6 and* v = var and* e = expr in
         return (Printf.sprintf "%d.times { |t| %s = %s + t }" n v e));
        (let* e = expr in return (Printf.sprintf "xs << %s" e));
        return "puts xs.length";
        (let* v = var in return (Printf.sprintf "puts %s" v));
      ]
  in
  let* stmts = list_size (int_range 3 14) stmt in
  return
    ("a = 1\nb = 2\nc = 3\nxs = []\n" ^ String.concat "\n" stmts
   ^ "\nputs a\nputs b\nputs c")

let outcome ~interp source =
  match
    run_tier ~interp ~scheme:Core.Scheme.Htm_dynamic source
  with
  | r -> Ok (r.Core.Runner.output, r.total_insns, r.wall_cycles)
  | exception Core.Runner.Guest_failure m -> Error m

let test_tier_fuzz =
  Tutil.qtest "random programs agree across tiers" ~count:60
    (QCheck.make ~print:(fun s -> s) gen_program)
    (fun source ->
      let ref_ = outcome ~interp:Core.Runner.Interp_ref source in
      outcome ~interp:Core.Runner.Interp_threaded source = ref_
      && outcome ~interp:Core.Runner.Interp_compiled source = ref_)

let suite =
  suite
  @ [
      Alcotest.test_case "opt arithmetic edges" `Quick test_arith_edges;
      Alcotest.test_case "decode consistency" `Quick test_decode_consistency;
      Alcotest.test_case "runner cost table" `Quick test_runner_cost_tbl;
      Alcotest.test_case "superinstruction fusion" `Quick test_fusion_patterns;
      Alcotest.test_case "opcode ids" `Quick test_opcode_ids;
      Alcotest.test_case "tier differential: corpus" `Quick test_tier_corpus;
      Alcotest.test_case "tier differential: workloads" `Slow
        test_tier_workloads;
      Alcotest.test_case "tier differential: BENCH_INTERP env" `Quick
        test_tier_env_default;
      test_tier_fuzz;
    ]

(* The hybrid-TM figure runs on a machine with a quarter of the store
   buffer, so windows overflow routinely and the runs live on the fallback
   paths (GIL serialisation, software transactions) — pressure the stock
   differential never reaches. The reference tier defines the expected
   instruction count; the threaded run gets a finite budget a bit above it
   so a divergence fails fast instead of spinning to the global budget. *)
let run_pressure ~interp ~scheme ~threads ~machine ?max_insns ?hot
    (w : Workloads.Workload.t) =
  let cfg =
    match max_insns with
    | None -> Core.Runner.config ~scheme ~interp ?hot machine
    | Some m -> Core.Runner.config ~scheme ~interp ~max_insns:m ?hot machine
  in
  let source = w.Workloads.Workload.source ~threads ~size:Workloads.Size.Test in
  match w.Workloads.Workload.kind with
  | Workloads.Workload.Compute ->
      Core.Runner.run_source ~setup:(w.Workloads.Workload.setup None) cfg
        ~source
  | Workloads.Workload.Server ->
      let requests = w.Workloads.Workload.server_requests Workloads.Size.Test in
      let io =
        (Option.get w.Workloads.Workload.make_io) ~clients:threads ~requests
      in
      Core.Runner.run_source ~io
        ~stop:(fun () -> Netsim.done_all io)
        ~setup:(w.Workloads.Workload.setup (Some io))
        cfg ~source

let test_tier_capacity_pressure () =
  let machine =
    { Htm_sim.Machine.zec12 with Htm_sim.Machine.ws_lines = 8 }
  in
  List.iter
    (fun wname ->
      let w = Option.get (Workloads.Workload.find wname) in
      List.iter
        (fun scheme ->
          List.iter
            (fun threads ->
              let name =
                Printf.sprintf "%s/%s/%dT (ws/4)" wname
                  (Core.Scheme.to_string scheme)
                  threads
              in
              let ref_ =
                run_pressure ~interp:Core.Runner.Interp_ref ~scheme ~threads
                  ~machine w
              in
              let budget = (3 * ref_.Core.Runner.total_insns) + 10_000 in
              let thr =
                run_pressure ~interp:Core.Runner.Interp_threaded ~scheme
                  ~threads ~machine ~max_insns:budget w
              and cmp =
                run_pressure ~interp:Core.Runner.Interp_compiled ~scheme
                  ~threads ~machine ~max_insns:budget w
              (* the un-memoized baseline (BENCH_HOT=off) on the fastest
                 tier: every stat and abort count must match the reference
                 run, which itself executes with the session default *)
              and cold =
                run_pressure ~interp:Core.Runner.Interp_compiled ~scheme
                  ~threads ~machine ~max_insns:budget ~hot:false w
              in
              assert_same_tier (name ^ " (threaded)") thr ref_;
              assert_same_tier (name ^ " (compiled)") cmp ref_;
              assert_same_tier (name ^ " (compiled, hot=off)") cold ref_)
            [ 1; 2; 4; 6; 8; 12 ])
        [ Core.Scheme.Gil_only; Core.Scheme.Htm_dynamic; Core.Scheme.Hybrid ])
    [ "bt"; "cg"; "ft"; "is"; "lu"; "mg"; "sp"; "webrick" ]

(* ---- compiled-tier deoptimization on method/class redefinition ----
   A hot loop compiles (the profile counter crosses the threshold), then a
   mid-run [Defmethod]/[Defclass] flushes every compiled superblock — each
   drop counting one [deopt.invalidate] — and the second hot loop must
   recompile against the new method table. Stale dispatch would show up as
   a wrong sum; the tier differential also pins the instruction stream to
   the reference interpreter's. *)

let jit_counter (r : Core.Runner.result) name =
  (Obs.Metrics.counter r.Core.Runner.metrics name).Obs.Metrics.count

let defmethod_deopt_src =
  {|def f(v)
  v + 1
end
s = 0
i = 0
while i < 200
  s = f(s)
  i += 1
end
def f(v)
  v + 2
end
j = 0
while j < 200
  s = f(s)
  j += 1
end
puts s|}

let defclass_deopt_src =
  {|class C
  def g
    1
  end
end
c = C.new
s = 0
i = 0
while i < 200
  s += c.g
  i += 1
end
class C
  def g
    2
  end
end
j = 0
while j < 200
  s += c.g
  j += 1
end
puts s|}

let test_compiled_deopt_recompile () =
  List.iter
    (fun (name, src, expected) ->
      let run interp =
        let cfg =
          Core.Runner.config ~scheme:Core.Scheme.Gil_only ~interp
            Htm_sim.Machine.zec12
        in
        Core.Runner.run_source cfg ~source:src
      in
      let c = run Core.Runner.Interp_compiled in
      let r = run Core.Runner.Interp_ref in
      Alcotest.(check string) (name ^ ": output") expected c.Core.Runner.output;
      assert_same_tier (name ^ " (compiled vs ref)") c r;
      Alcotest.(check bool)
        (name ^ ": compiled before and after the flush")
        true
        (jit_counter c "compile.blocks" >= 2);
      Alcotest.(check bool)
        (name ^ ": redefinition dropped compiled blocks")
        true
        (jit_counter c "deopt.invalidate" >= 1);
      Alcotest.(check bool)
        (name ^ ": hot head recompiled after the flush")
        true
        (List.exists
           (fun (_, _, _, compiled) -> compiled)
           c.Core.Runner.jit_profile))
    [
      ("defmethod deopt", defmethod_deopt_src, "600
");
      ("defclass deopt", defclass_deopt_src, "600
");
    ]

let suite =
  suite
  @ [
      Alcotest.test_case "tier differential: capacity pressure" `Quick
        test_tier_capacity_pressure;
      Alcotest.test_case "compiled tier: defmethod/defclass deopt" `Quick
        test_compiled_deopt_recompile;
    ]
