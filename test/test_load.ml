(* The open-loop load tier: the fig_load family's JSON member must be a
   pure function of the simulated semantics — byte-identical across worker
   counts, both schedulers and both interpreter tiers (the digest-stability
   acceptance check the smoke script runs at full scale). *)

module J = Obs.Json

(* A reduced panel (two schemes, test size) keeps each leg to a few server
   runs; [load_json] is the exact serializer bench digests. *)
let panel_text () =
  let p =
    Harness.Figures.run_load_panel
      ~schemes:[ Core.Scheme.Gil_only; Core.Scheme.Htm_dynamic ]
      ~size:Workloads.Size.Test ~machine:Htm_sim.Machine.zec12 "webrick"
  in
  J.to_string (Harness.Figures.load_json p)

let with_env key value f =
  Unix.putenv key value;
  Fun.protect ~finally:(fun () -> Unix.putenv key "") f

let test_jobs_stability () =
  Harness.Pool.set_global_jobs 1;
  let one = panel_text () in
  Harness.Pool.set_global_jobs 4;
  let four = panel_text () in
  Harness.Pool.set_global_jobs 1;
  Alcotest.(check bool) "BENCH_JOBS=1 and 4 serialise identically" true
    (one = four)

let test_tier_stability () =
  let base = panel_text () in
  let ref_sched = with_env "BENCH_SCHED" "ref" panel_text in
  Alcotest.(check bool) "reference scheduler serialises identically" true
    (base = ref_sched);
  let ref_interp = with_env "BENCH_INTERP" "ref" panel_text in
  Alcotest.(check bool) "reference interpreter serialises identically" true
    (base = ref_interp)

(* The sweep's semantics, not just its stability: saturation must show up
   as achieved load capped below offered, with losses accounted. *)
let test_saturation_shape () =
  let p =
    Harness.Figures.run_load_panel ~schemes:[ Core.Scheme.Gil_only ]
      ~size:Workloads.Size.Test ~machine:Htm_sim.Machine.zec12 "webrick"
  in
  let rates = Harness.Figures.offered_loads "webrick" in
  let low = List.hd rates and high = List.nth rates (List.length rates - 1) in
  let stats r =
    match Harness.Figures.load_cell p "GIL" r with
    | Some lp -> lp.Harness.Figures.lp_stats
    | None -> Alcotest.fail "missing grid cell"
  in
  let l = stats low and h = stats high in
  Alcotest.(check bool) "undersaturated: achieved tracks offered" true
    (l.Harness.Exp.achieved_rps < low *. 1.5
    && l.Harness.Exp.dropped + l.Harness.Exp.timed_out = 0);
  Alcotest.(check bool) "oversaturated: latency tail grows" true
    (h.Harness.Exp.p99_cycles >= l.Harness.Exp.p99_cycles);
  Alcotest.(check bool) "every request accounted" true
    (h.Harness.Exp.completed + h.Harness.Exp.dropped + h.Harness.Exp.timed_out
    = Workloads.Workload.webrick.Workloads.Workload.server_requests
        Workloads.Size.Test)

let suite =
  [
    Alcotest.test_case "fig_load stable across worker counts" `Quick
      test_jobs_stability;
    Alcotest.test_case "fig_load stable across sched/interp tiers" `Quick
      test_tier_stability;
    Alcotest.test_case "saturation shape" `Quick test_saturation_shape;
  ]
