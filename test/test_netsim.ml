(* Virtual sockets and the closed-loop client population. *)

let mk ?(clients = 2) ?(limit = 10) () =
  Netsim.create ~think_cycles:100 ~request_limit:limit ~n_clients:clients
    (fun c -> Printf.sprintf "GET /c%d HTTP/1.1\r\n\r\n" c)

let test_arrivals () =
  let t = mk () in
  Alcotest.(check (option int)) "first arrival at 0" (Some 0) (Netsim.next_arrival t);
  Alcotest.(check bool) "arrivals materialise" true (Netsim.advance t ~now:0);
  (match Netsim.accept t with
  | Some c -> Alcotest.(check string) "request payload" "GET /c0 HTTP/1.1\r\n\r\n" c.Netsim.request
  | None -> Alcotest.fail "expected a connection");
  Alcotest.(check bool) "second client too" true (Netsim.accept t <> None);
  Alcotest.(check (option Alcotest.reject)) "queue drained"
    None
    (match Netsim.accept t with Some _ -> Some () | None -> None)

let test_closed_loop () =
  let t = mk ~clients:1 ~limit:3 () in
  ignore (Netsim.advance t ~now:0);
  let c1 = Option.get (Netsim.accept t) in
  (* client busy: no new request until response *)
  ignore (Netsim.advance t ~now:50);
  Alcotest.(check bool) "busy client" true (Netsim.accept t = None);
  Netsim.write t c1.Netsim.conn_id "HTTP/1.1 200 OK";
  Netsim.close t c1.Netsim.conn_id ~now:500;
  Alcotest.(check int) "completed" 1 (Netsim.completed t);
  (* next send after think time *)
  Alcotest.(check (option int)) "think delay" (Some 600) (Netsim.next_arrival t)

let test_request_limit () =
  let t = mk ~clients:1 ~limit:2 () in
  let now = ref 0 in
  while not (Netsim.done_all t) do
    ignore (Netsim.advance t ~now:!now);
    (match Netsim.accept t with
    | Some c ->
        Netsim.write t c.Netsim.conn_id "ok";
        Netsim.close t c.Netsim.conn_id ~now:(!now + 10)
    | None -> ());
    now := !now + 200
  done;
  Alcotest.(check int) "limit respected" 2 (Netsim.completed t);
  Alcotest.(check (option int)) "no more arrivals" None (Netsim.next_arrival t)

let test_throughput_measure () =
  let t = mk ~clients:4 ~limit:100 () in
  let now = ref 0 in
  while not (Netsim.done_all t) do
    ignore (Netsim.advance t ~now:!now);
    (match Netsim.accept t with
    | Some c -> Netsim.close t c.Netsim.conn_id ~now:(!now + 50)
    | None -> ());
    now := !now + 50
  done;
  Alcotest.(check bool) "throughput positive" true (Netsim.throughput t > 0.0);
  Alcotest.(check bool) "latency positive" true (Netsim.mean_latency t >= 0.0)

(* ---- open-loop arrivals ---- *)

let mk_open ?(limit = 50) ?(queue_cap = max_int) ?(queue_timeout = max_int)
    ?(keepalive = max_int) arrivals =
  Netsim.create ~request_limit:limit ~arrivals ~queue_cap ~queue_timeout
    ~keepalive ~n_clients:4 (fun c ->
      Printf.sprintf "GET /c%d HTTP/1.1\r\n\r\n" c)

(* Drain a generator: advance in fixed steps, accept everything, close
   immediately. Returns the (client, arrived) schedule actually seen. *)
let drain t =
  let seen = ref [] in
  let now = ref 0 in
  while not (Netsim.done_all t) do
    ignore (Netsim.advance t ~now:!now);
    let rec pump () =
      match Netsim.accept t ~now:!now with
      | Some c ->
          seen := (c.Netsim.client, c.Netsim.arrived) :: !seen;
          Netsim.write t c.Netsim.conn_id "ok" ~now:(!now + 10);
          Netsim.close t c.Netsim.conn_id ~now:(!now + 20);
          pump ()
      | None -> ()
    in
    pump ();
    now := !now + 500
  done;
  List.rev !seen

let test_poisson_deterministic () =
  let arr = Netsim.Poisson { rate = 2_000_000.0; seed = 42 } in
  let a = drain (mk_open arr) and b = drain (mk_open arr) in
  Alcotest.(check int) "all issued" 50 (List.length a);
  Alcotest.(check bool) "same seed, same schedule" true (a = b);
  let c = drain (mk_open (Netsim.Poisson { rate = 2_000_000.0; seed = 7 })) in
  Alcotest.(check bool) "different seed, different schedule" true (a <> c);
  (* gaps average out near the configured rate: 50 reqs at 2M/s ~ 25k cycles *)
  let last = List.fold_left (fun _ (_, t) -> t) 0 a in
  Alcotest.(check bool) "span in the right decade" true
    (last > 5_000 && last < 250_000)

let test_burst_grouping () =
  let t = mk_open ~limit:40 (Netsim.Burst { rate = 1_000_000.0; size = 8; seed = 3 }) in
  let sched = drain t in
  Alcotest.(check int) "all issued" 40 (List.length sched);
  (* arrivals come in groups of [size] sharing one timestamp *)
  let module M = Map.Make (Int) in
  let groups =
    List.fold_left
      (fun m (_, at) -> M.update at (fun n -> Some (1 + Option.value n ~default:0)) m)
      M.empty sched
  in
  M.iter
    (fun _ n ->
      if n mod 8 <> 0 then Alcotest.failf "burst of %d not a multiple of 8" n)
    groups;
  Alcotest.(check int) "5 fronts" 5 (M.cardinal groups)

let test_queue_bound_drops () =
  let t =
    mk_open ~limit:20 ~queue_cap:5
      (Netsim.Poisson { rate = 1_000_000.0; seed = 1 })
  in
  (* never accept: the queue fills to its bound, the rest drop *)
  ignore (Netsim.advance t ~now:100_000_000);
  Alcotest.(check int) "queue holds the cap" 5 (Netsim.queue_depth t);
  Alcotest.(check int) "rest dropped" 15 (Netsim.dropped t);
  Alcotest.(check bool) "queued requests still outstanding" false
    (Netsim.done_all t);
  for _ = 1 to 5 do
    match Netsim.accept t ~now:100_000_000 with
    | Some c -> Netsim.close t c.Netsim.conn_id ~now:100_000_100
    | None -> Alcotest.fail "queue emptied early"
  done;
  Alcotest.(check bool) "all requests accounted for" true (Netsim.done_all t);
  Alcotest.(check int) "queue peak recorded" 5 (Netsim.queue_peak t)

let test_queue_timeout () =
  let t =
    mk_open ~limit:10 ~queue_timeout:1_000
      (Netsim.Poisson { rate = 1_000_000.0; seed = 9 })
  in
  ignore (Netsim.advance t ~now:1_000_000);
  (* everything queued has waited > 1000 cycles by 100ms in *)
  ignore (Netsim.advance t ~now:100_000_000);
  Alcotest.(check int) "stale entries expired" 10 (Netsim.timed_out t);
  Alcotest.(check int) "queue empty" 0 (Netsim.queue_depth t);
  Alcotest.(check bool) "timeouts complete the run" true (Netsim.done_all t)

let test_keepalive_churn () =
  let t =
    mk_open ~limit:40 ~keepalive:2 (Netsim.Poisson { rate = 2_000_000.0; seed = 5 })
  in
  let sched = drain t in
  Alcotest.(check int) "all served" 40 (Netsim.completed t);
  (* 4 slots x budget 2 = 8 requests on the founding identities; every
     further slot reuse churned in a fresh client id *)
  Alcotest.(check int) "churn accounted" 16 (Netsim.churned t);
  let distinct =
    List.sort_uniq compare (List.map fst sched) |> List.length
  in
  Alcotest.(check int) "fresh identities appear" 20 distinct

let test_stat_guards () =
  (* no completions: both stats answer 0, never NaN/infinity *)
  let t = mk_open ~limit:5 (Netsim.Poisson { rate = 1_000_000.0; seed = 2 }) in
  Alcotest.(check (float 0.0)) "throughput, no completions" 0.0
    (Netsim.throughput t);
  Alcotest.(check (float 0.0)) "latency, no completions" 0.0
    (Netsim.mean_latency t);
  Alcotest.(check (float 0.0)) "achieved load, no completions" 0.0
    (Netsim.achieved_load t);
  (* fewer than four completions: whole-span fallback, still finite *)
  ignore (Netsim.advance t ~now:1_000_000);
  (match Netsim.accept t ~now:1_000_000 with
  | Some c -> Netsim.close t c.Netsim.conn_id ~now:1_000_100
  | None -> Alcotest.fail "expected a queued connection");
  let tp = Netsim.throughput t in
  Alcotest.(check bool) "single completion finite" true
    (Float.is_finite tp && tp >= 0.0);
  Alcotest.(check bool) "single-completion latency finite" true
    (Float.is_finite (Netsim.mean_latency t));
  let ar = Netsim.achieved_load t in
  Alcotest.(check bool) "single-completion achieved rate finite" true
    (Float.is_finite ar && ar > 0.0);
  Alcotest.(check (float 1e-9)) "offered load echoes config" 1_000_000.0
    (Netsim.offered_load t)

let test_lifecycle_hook () =
  let t = mk_open ~limit:3 (Netsim.Poisson { rate = 1_000_000.0; seed = 11 }) in
  let fired = ref [] in
  Netsim.set_on_close t (fun c ~now ->
      fired := (c.Netsim.conn_id, c.Netsim.accepted_at, c.Netsim.first_byte_at, now) :: !fired);
  ignore (drain t);
  Alcotest.(check int) "hook fired per completion" 3 (List.length !fired);
  List.iter
    (fun (_, accepted, first_byte, closed) ->
      Alcotest.(check bool) "accept stamped" true (accepted > 0);
      Alcotest.(check bool) "first byte after accept" true
        (first_byte >= accepted);
      Alcotest.(check bool) "close last" true (closed >= first_byte))
    !fired;
  Alcotest.check_raises "bad rate rejected"
    (Invalid_argument "Netsim.create: offered load <= 0") (fun () ->
      ignore (mk_open (Netsim.Poisson { rate = 0.0; seed = 0 })))

let suite =
  [
    Alcotest.test_case "arrivals and accept" `Quick test_arrivals;
    Alcotest.test_case "closed loop" `Quick test_closed_loop;
    Alcotest.test_case "request limit" `Quick test_request_limit;
    Alcotest.test_case "throughput measurement" `Quick test_throughput_measure;
    Alcotest.test_case "poisson determinism" `Quick test_poisson_deterministic;
    Alcotest.test_case "burst grouping" `Quick test_burst_grouping;
    Alcotest.test_case "bounded queue drops" `Quick test_queue_bound_drops;
    Alcotest.test_case "queue timeout" `Quick test_queue_timeout;
    Alcotest.test_case "keep-alive churn" `Quick test_keepalive_churn;
    Alcotest.test_case "stat guards" `Quick test_stat_guards;
    Alcotest.test_case "lifecycle hook" `Quick test_lifecycle_hook;
  ]
