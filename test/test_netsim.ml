(* Virtual sockets and the closed-loop client population. *)

let mk ?(clients = 2) ?(limit = 10) () =
  Netsim.create ~think_cycles:100 ~request_limit:limit ~n_clients:clients
    (fun c -> Printf.sprintf "GET /c%d HTTP/1.1\r\n\r\n" c)

let test_arrivals () =
  let t = mk () in
  Alcotest.(check (option int)) "first arrival at 0" (Some 0) (Netsim.next_arrival t);
  Alcotest.(check bool) "arrivals materialise" true (Netsim.advance t ~now:0);
  (match Netsim.accept t with
  | Some c -> Alcotest.(check string) "request payload" "GET /c0 HTTP/1.1\r\n\r\n" c.Netsim.request
  | None -> Alcotest.fail "expected a connection");
  Alcotest.(check bool) "second client too" true (Netsim.accept t <> None);
  Alcotest.(check (option Alcotest.reject)) "queue drained"
    None
    (match Netsim.accept t with Some _ -> Some () | None -> None)

let test_closed_loop () =
  let t = mk ~clients:1 ~limit:3 () in
  ignore (Netsim.advance t ~now:0);
  let c1 = Option.get (Netsim.accept t) in
  (* client busy: no new request until response *)
  ignore (Netsim.advance t ~now:50);
  Alcotest.(check bool) "busy client" true (Netsim.accept t = None);
  Netsim.write t c1.Netsim.conn_id "HTTP/1.1 200 OK";
  Netsim.close t c1.Netsim.conn_id ~now:500;
  Alcotest.(check int) "completed" 1 (Netsim.completed t);
  (* next send after think time *)
  Alcotest.(check (option int)) "think delay" (Some 600) (Netsim.next_arrival t)

let test_request_limit () =
  let t = mk ~clients:1 ~limit:2 () in
  let now = ref 0 in
  while not (Netsim.done_all t) do
    ignore (Netsim.advance t ~now:!now);
    (match Netsim.accept t with
    | Some c ->
        Netsim.write t c.Netsim.conn_id "ok";
        Netsim.close t c.Netsim.conn_id ~now:(!now + 10)
    | None -> ());
    now := !now + 200
  done;
  Alcotest.(check int) "limit respected" 2 (Netsim.completed t);
  Alcotest.(check (option int)) "no more arrivals" None (Netsim.next_arrival t)

let test_throughput_measure () =
  let t = mk ~clients:4 ~limit:100 () in
  let now = ref 0 in
  while not (Netsim.done_all t) do
    ignore (Netsim.advance t ~now:!now);
    (match Netsim.accept t with
    | Some c -> Netsim.close t c.Netsim.conn_id ~now:(!now + 50)
    | None -> ());
    now := !now + 50
  done;
  Alcotest.(check bool) "throughput positive" true (Netsim.throughput t > 0.0);
  Alcotest.(check bool) "latency positive" true (Netsim.mean_latency t >= 0.0)

(* ---- open-loop arrivals ---- *)

let mk_open ?(limit = 50) ?(queue_cap = max_int) ?(queue_timeout = max_int)
    ?(keepalive = max_int) arrivals =
  Netsim.create ~request_limit:limit ~arrivals ~queue_cap ~queue_timeout
    ~keepalive ~n_clients:4 (fun c ->
      Printf.sprintf "GET /c%d HTTP/1.1\r\n\r\n" c)

(* Drain a generator: advance in fixed steps, accept everything, close
   immediately. Returns the (client, arrived) schedule actually seen. *)
let drain t =
  let seen = ref [] in
  let now = ref 0 in
  while not (Netsim.done_all t) do
    ignore (Netsim.advance t ~now:!now);
    let rec pump () =
      match Netsim.accept t ~now:!now with
      | Some c ->
          seen := (c.Netsim.client, c.Netsim.arrived) :: !seen;
          Netsim.write t c.Netsim.conn_id "ok" ~now:(!now + 10);
          Netsim.close t c.Netsim.conn_id ~now:(!now + 20);
          pump ()
      | None -> ()
    in
    pump ();
    now := !now + 500
  done;
  List.rev !seen

let test_poisson_deterministic () =
  let arr = Netsim.Poisson { rate = 2_000_000.0; seed = 42 } in
  let a = drain (mk_open arr) and b = drain (mk_open arr) in
  Alcotest.(check int) "all issued" 50 (List.length a);
  Alcotest.(check bool) "same seed, same schedule" true (a = b);
  let c = drain (mk_open (Netsim.Poisson { rate = 2_000_000.0; seed = 7 })) in
  Alcotest.(check bool) "different seed, different schedule" true (a <> c);
  (* gaps average out near the configured rate: 50 reqs at 2M/s ~ 25k cycles *)
  let last = List.fold_left (fun _ (_, t) -> t) 0 a in
  Alcotest.(check bool) "span in the right decade" true
    (last > 5_000 && last < 250_000)

let test_burst_grouping () =
  let t = mk_open ~limit:40 (Netsim.Burst { rate = 1_000_000.0; size = 8; seed = 3 }) in
  let sched = drain t in
  Alcotest.(check int) "all issued" 40 (List.length sched);
  (* arrivals come in groups of [size] sharing one timestamp *)
  let module M = Map.Make (Int) in
  let groups =
    List.fold_left
      (fun m (_, at) -> M.update at (fun n -> Some (1 + Option.value n ~default:0)) m)
      M.empty sched
  in
  M.iter
    (fun _ n ->
      if n mod 8 <> 0 then Alcotest.failf "burst of %d not a multiple of 8" n)
    groups;
  Alcotest.(check int) "5 fronts" 5 (M.cardinal groups)

let test_queue_bound_drops () =
  let t =
    mk_open ~limit:20 ~queue_cap:5
      (Netsim.Poisson { rate = 1_000_000.0; seed = 1 })
  in
  (* never accept: the queue fills to its bound, the rest drop *)
  ignore (Netsim.advance t ~now:100_000_000);
  Alcotest.(check int) "queue holds the cap" 5 (Netsim.queue_depth t);
  Alcotest.(check int) "rest dropped" 15 (Netsim.dropped t);
  Alcotest.(check bool) "queued requests still outstanding" false
    (Netsim.done_all t);
  for _ = 1 to 5 do
    match Netsim.accept t ~now:100_000_000 with
    | Some c -> Netsim.close t c.Netsim.conn_id ~now:100_000_100
    | None -> Alcotest.fail "queue emptied early"
  done;
  Alcotest.(check bool) "all requests accounted for" true (Netsim.done_all t);
  Alcotest.(check int) "queue peak recorded" 5 (Netsim.queue_peak t)

let test_queue_timeout () =
  let t =
    mk_open ~limit:10 ~queue_timeout:1_000
      (Netsim.Poisson { rate = 1_000_000.0; seed = 9 })
  in
  ignore (Netsim.advance t ~now:1_000_000);
  (* everything queued has waited > 1000 cycles by 100ms in *)
  ignore (Netsim.advance t ~now:100_000_000);
  Alcotest.(check int) "stale entries expired" 10 (Netsim.timed_out t);
  Alcotest.(check int) "queue empty" 0 (Netsim.queue_depth t);
  Alcotest.(check bool) "timeouts complete the run" true (Netsim.done_all t)

let test_keepalive_churn () =
  let t =
    mk_open ~limit:40 ~keepalive:2 (Netsim.Poisson { rate = 2_000_000.0; seed = 5 })
  in
  let sched = drain t in
  Alcotest.(check int) "all served" 40 (Netsim.completed t);
  (* 4 slots x budget 2 = 8 requests on the founding identities; every
     further slot reuse churned in a fresh client id *)
  Alcotest.(check int) "churn accounted" 16 (Netsim.churned t);
  let distinct =
    List.sort_uniq compare (List.map fst sched) |> List.length
  in
  Alcotest.(check int) "fresh identities appear" 20 distinct

(* ---- Fed arrivals: the shard balancer's interface ---- *)

let test_fed_socket () =
  let t =
    Netsim.create ~arrivals:Netsim.Fed ~n_clients:1 (fun _ ->
        "GET / HTTP/1.1\r\n\r\n")
  in
  Alcotest.(check bool) "feed may grow" true (Netsim.feed_may_grow t);
  Netsim.feed t ~at:100 ~client:0 ~request:"GET /a HTTP/1.1\r\n\r\n";
  Netsim.feed t ~at:300 ~client:1 ~request:"GET /b HTTP/1.1\r\n\r\n";
  Alcotest.(check bool) "not done while the feed is open" false
    (Netsim.done_all t);
  ignore (Netsim.advance t ~now:200);
  (match Netsim.accept t ~now:200 with
  | Some c ->
      Alcotest.(check string) "the fed payload is served"
        "GET /a HTTP/1.1\r\n\r\n" c.Netsim.request;
      Alcotest.(check int) "the fed client identity sticks" 0 c.Netsim.client;
      Netsim.close t c.Netsim.conn_id ~now:250
  | None -> Alcotest.fail "fed arrival not materialised");
  Netsim.close_feed t;
  Alcotest.(check bool) "no growth after close_feed" false
    (Netsim.feed_may_grow t);
  Alcotest.check_raises "feed after close rejected"
    (Invalid_argument "Netsim.feed: feed already closed") (fun () ->
      Netsim.feed t ~at:400 ~client:0 ~request:"x");
  Alcotest.(check bool) "backlog keeps it alive" false (Netsim.done_all t);
  ignore (Netsim.advance t ~now:400);
  (match Netsim.accept t ~now:400 with
  | Some c -> Netsim.close t c.Netsim.conn_id ~now:450
  | None -> Alcotest.fail "second fed arrival not materialised");
  Alcotest.(check bool) "done once drained" true (Netsim.done_all t);
  Alcotest.check_raises "feed on a non-Fed socket rejected"
    (Invalid_argument "Netsim.feed: socket was not created with Fed arrivals")
    (fun () ->
      Netsim.feed
        (mk_open (Netsim.Poisson { rate = 1000.0; seed = 1 }))
        ~at:0 ~client:0 ~request:"x")

(* The pure generator must reproduce exactly the arrivals a live socket
   with the same parameters materialises. *)
let test_schedule_matches_socket () =
  let arrivals = Netsim.Poisson { rate = 2_000_000.0; seed = 42 } in
  let entries, churned =
    Netsim.schedule ~keepalive:8 ~arrivals ~n_clients:4 ~requests:50 (fun c ->
        Printf.sprintf "GET /c%d HTTP/1.1\r\n\r\n" c)
  in
  Alcotest.(check int) "every request scheduled" 50 (Array.length entries);
  let live = drain (mk_open ~keepalive:8 arrivals) in
  Alcotest.(check (list (pair int int))) "same (client, at) schedule"
    (List.map (fun e -> (e.Netsim.se_client, e.Netsim.se_at)) (Array.to_list entries))
    live;
  Alcotest.(check bool) "monotone arrival times" true
    (Array.for_all2
       (fun a b -> a.Netsim.se_at <= b.Netsim.se_at)
       (Array.sub entries 0 49)
       (Array.sub entries 1 49));
  let entries2, churned2 =
    Netsim.schedule ~keepalive:8 ~arrivals ~n_clients:4 ~requests:50 (fun c ->
        Printf.sprintf "GET /c%d HTTP/1.1\r\n\r\n" c)
  in
  Alcotest.(check bool) "generator deterministic" true
    (entries = entries2 && churned = churned2);
  Alcotest.check_raises "closed-loop schedule rejected"
    (Invalid_argument "Netsim.schedule: needs Poisson or Burst arrivals")
    (fun () ->
      ignore
        (Netsim.schedule ~arrivals:Netsim.Closed ~n_clients:1 ~requests:1
           (fun _ -> "x")))

(* Virtual-time-stamped observations: pure functions of the stamp, however
   far a runner overshot when it recorded them. *)
let test_stamp_accessors () =
  let t =
    Netsim.create ~arrivals:Netsim.Fed ~queue_cap:1 ~queue_timeout:500
      ~n_clients:1
      (fun _ -> "GET / HTTP/1.1\r\n\r\n")
  in
  Netsim.feed t ~at:100 ~client:0 ~request:"a";
  Netsim.feed t ~at:110 ~client:1 ~request:"b";
  (* cap 1: the second arrival drops at its arrival instant *)
  ignore (Netsim.advance t ~now:150);
  Alcotest.(check int) "drop stamped at arrival" 1
    (Netsim.dropped_by t ~time:110);
  Alcotest.(check int) "no drops before it" 0 (Netsim.dropped_by t ~time:109);
  (* the queued arrival expires 500 cycles after it arrived *)
  ignore (Netsim.advance t ~now:2_000);
  Alcotest.(check int) "timeout stamped at logical expiry" 1
    (Netsim.timed_out_by t ~time:600);
  Alcotest.(check int) "no expiry before it" 0 (Netsim.timed_out_by t ~time:599);
  (* completions: stamp, total order, last_completion *)
  Netsim.feed t ~at:2_100 ~client:2 ~request:"c";
  Netsim.close_feed t;
  ignore (Netsim.advance t ~now:2_200);
  (match Netsim.accept t ~now:2_200 with
  | Some c -> Netsim.close t c.Netsim.conn_id ~now:2_300
  | None -> Alcotest.fail "third arrival not materialised");
  Alcotest.(check int) "completion stamped" 1 (Netsim.completed_by t ~time:2_300);
  Alcotest.(check int) "not before" 0 (Netsim.completed_by t ~time:2_299);
  Alcotest.(check int) "last completion" 2_300 (Netsim.last_completion t);
  (match Netsim.completion_log t with
  | [ (fin, _, client) ] ->
      Alcotest.(check (pair int int)) "log entry" (2_300, 2) (fin, client)
  | l -> Alcotest.failf "unexpected completion log length %d" (List.length l));
  Alcotest.(check bool) "everything accounted, socket done" true
    (Netsim.done_all t)

let test_stat_guards () =
  (* no completions: both stats answer 0, never NaN/infinity *)
  let t = mk_open ~limit:5 (Netsim.Poisson { rate = 1_000_000.0; seed = 2 }) in
  Alcotest.(check (float 0.0)) "throughput, no completions" 0.0
    (Netsim.throughput t);
  Alcotest.(check (float 0.0)) "latency, no completions" 0.0
    (Netsim.mean_latency t);
  Alcotest.(check (float 0.0)) "achieved load, no completions" 0.0
    (Netsim.achieved_load t);
  (* fewer than four completions: whole-span fallback, still finite *)
  ignore (Netsim.advance t ~now:1_000_000);
  (match Netsim.accept t ~now:1_000_000 with
  | Some c -> Netsim.close t c.Netsim.conn_id ~now:1_000_100
  | None -> Alcotest.fail "expected a queued connection");
  let tp = Netsim.throughput t in
  Alcotest.(check bool) "single completion finite" true
    (Float.is_finite tp && tp >= 0.0);
  Alcotest.(check bool) "single-completion latency finite" true
    (Float.is_finite (Netsim.mean_latency t));
  let ar = Netsim.achieved_load t in
  Alcotest.(check bool) "single-completion achieved rate finite" true
    (Float.is_finite ar && ar > 0.0);
  Alcotest.(check (float 1e-9)) "offered load echoes config" 1_000_000.0
    (Netsim.offered_load t)

let test_lifecycle_hook () =
  let t = mk_open ~limit:3 (Netsim.Poisson { rate = 1_000_000.0; seed = 11 }) in
  let fired = ref [] in
  Netsim.set_on_close t (fun c ~now ->
      fired := (c.Netsim.conn_id, c.Netsim.accepted_at, c.Netsim.first_byte_at, now) :: !fired);
  ignore (drain t);
  Alcotest.(check int) "hook fired per completion" 3 (List.length !fired);
  List.iter
    (fun (_, accepted, first_byte, closed) ->
      Alcotest.(check bool) "accept stamped" true (accepted > 0);
      Alcotest.(check bool) "first byte after accept" true
        (first_byte >= accepted);
      Alcotest.(check bool) "close last" true (closed >= first_byte))
    !fired;
  Alcotest.check_raises "bad rate rejected"
    (Invalid_argument "Netsim.create: offered load <= 0") (fun () ->
      ignore (mk_open (Netsim.Poisson { rate = 0.0; seed = 0 })))

let suite =
  [
    Alcotest.test_case "arrivals and accept" `Quick test_arrivals;
    Alcotest.test_case "closed loop" `Quick test_closed_loop;
    Alcotest.test_case "request limit" `Quick test_request_limit;
    Alcotest.test_case "throughput measurement" `Quick test_throughput_measure;
    Alcotest.test_case "poisson determinism" `Quick test_poisson_deterministic;
    Alcotest.test_case "burst grouping" `Quick test_burst_grouping;
    Alcotest.test_case "bounded queue drops" `Quick test_queue_bound_drops;
    Alcotest.test_case "queue timeout" `Quick test_queue_timeout;
    Alcotest.test_case "keep-alive churn" `Quick test_keepalive_churn;
    Alcotest.test_case "fed socket" `Quick test_fed_socket;
    Alcotest.test_case "schedule generator matches socket" `Quick
      test_schedule_matches_socket;
    Alcotest.test_case "virtual-time stamp accessors" `Quick
      test_stamp_accessors;
    Alcotest.test_case "stat guards" `Quick test_stat_guards;
    Alcotest.test_case "lifecycle hook" `Quick test_lifecycle_hook;
  ]
