(* The observability layer: ring buffers, the metrics registry, Chrome
   trace-event export, Stats merge/export, and abort-site attribution on a
   genuinely contended guest workload. *)

module J = Obs.Json
module Ring = Obs.Ring

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* ---- ring buffer ---- *)

let test_ring_wraparound () =
  let r = Ring.create 4 in
  for i = 1 to 10 do
    Ring.push r i
  done;
  Alcotest.(check int) "capacity" 4 (Ring.capacity r);
  Alcotest.(check int) "length caps at capacity" 4 (Ring.length r);
  Alcotest.(check int) "total counts every push" 10 (Ring.total r);
  Alcotest.(check int) "dropped = total - capacity" 6 (Ring.dropped r);
  Alcotest.(check (list int)) "retains newest window, oldest first"
    [ 7; 8; 9; 10 ] (Ring.to_list r)

let test_ring_partial () =
  let r = Ring.create 8 in
  List.iter (Ring.push r) [ 1; 2; 3 ];
  Alcotest.(check int) "length before wrap" 3 (Ring.length r);
  Alcotest.(check int) "nothing dropped" 0 (Ring.dropped r);
  Alcotest.(check (list int)) "insertion order" [ 1; 2; 3 ] (Ring.to_list r);
  Alcotest.check_raises "zero capacity rejected"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Ring.create 0))

(* ---- metrics registry ---- *)

let test_histogram_bucketing () =
  (* log-linear: values below sub_count land in their own unit bucket, above
     that each power-of-two range splits into sub_count linear sub-buckets *)
  Alcotest.(check int) "sub_count" 16 Obs.Metrics.sub_count;
  List.iter
    (fun (v, want) ->
      Alcotest.(check int) (Printf.sprintf "bucket_of %d" v) want
        (Obs.Metrics.bucket_of v))
    [
      (0, 0);
      (1, 1);
      (15, 15);
      (16, 16);
      (31, 31);
      (32, 32);
      (33, 32);
      (1024, 112);
    ];
  (* bucket_le is the inclusive upper bound of its bucket... *)
  List.iter
    (fun (i, want) ->
      Alcotest.(check int) (Printf.sprintf "bucket_le %d" i) want
        (Obs.Metrics.bucket_le i))
    [ (0, 0); (15, 15); (16, 16); (31, 31); (32, 33); (112, 1087) ];
  Alcotest.(check int) "last bucket is unbounded" max_int
    (Obs.Metrics.bucket_le (Obs.Metrics.n_buckets - 1));
  (* ...and the two stay consistent with bounded relative error across the
     whole range: v <= bucket_le (bucket_of v) <= v + v/sub_count *)
  let v = ref 1 in
  while !v > 0 && !v < max_int / 4 do
    let le = Obs.Metrics.bucket_le (Obs.Metrics.bucket_of !v) in
    if le < !v || le > !v + (!v / Obs.Metrics.sub_count) + 1 then
      Alcotest.failf "bucket bound for %d out of tolerance: %d" !v le;
    v := !v + 1 + (!v / 3)
  done

let test_histogram_quantiles () =
  (* uniform 1..1000: every quantile estimate must land within one
     sub-bucket (<= 1/16 relative error) of the exact sample quantile *)
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "lat" in
  for i = 1 to 1000 do
    Obs.Metrics.observe h i
  done;
  List.iter
    (fun q ->
      let exact =
        max 1 (min 1000 (int_of_float (ceil (q *. 1000.)))) in
      let est = Obs.Metrics.quantile h q in
      let tol = (exact / Obs.Metrics.sub_count) + 1 in
      if est < exact - tol || est > exact + tol then
        Alcotest.failf "q=%.2f: estimate %d not within %d of exact %d" q est
          tol exact)
    [ 0.01; 0.25; 0.50; 0.90; 0.95; 0.99; 1.0 ];
  Alcotest.(check int) "q=0 clamps to min" 1 (Obs.Metrics.quantile h 0.0);
  Alcotest.(check int) "q=1 clamps to max" 1000 (Obs.Metrics.quantile h 1.0);
  (* a two-point distribution: the median is the low mode, p99 the high *)
  let h2 = Obs.Metrics.histogram m "bimodal" in
  for _ = 1 to 90 do
    Obs.Metrics.observe h2 10
  done;
  for _ = 1 to 10 do
    Obs.Metrics.observe h2 5000
  done;
  Alcotest.(check int) "bimodal p50 = low mode" 10
    (Obs.Metrics.quantile h2 0.50);
  let p99 = Obs.Metrics.quantile h2 0.99 in
  Alcotest.(check bool) "bimodal p99 in the high mode's bucket" true
    (p99 >= 5000 - (5000 / Obs.Metrics.sub_count) && p99 <= 5000);
  Alcotest.(check int) "empty histogram quantile" 0
    (Obs.Metrics.quantile (Obs.Metrics.histogram m "empty") 0.5);
  (* exported JSON carries the quantile fields *)
  match Obs.Metrics.to_json m with
  | J.Obj kvs -> (
      match List.assoc "lat" kvs with
      | J.Obj fields ->
          List.iter
            (fun k ->
              if not (List.mem_assoc k fields) then
                Alcotest.failf "histogram JSON missing %S" k)
            [ "p50"; "p95"; "p99"; "mean" ]
      | _ -> Alcotest.fail "lat not an object")
  | j -> Alcotest.failf "unexpected metrics JSON %s" (J.to_string j)

let test_histogram_observe () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "h" in
  List.iter (Obs.Metrics.observe h) [ 1; 2; 3; 100; -5 ];
  Alcotest.(check int) "count" 5 h.Obs.Metrics.n;
  (* -5 clamps to 0 *)
  Alcotest.(check int) "sum" 106 h.Obs.Metrics.sum;
  Alcotest.(check int) "max" 100 h.Obs.Metrics.max_v;
  Alcotest.(check int) "min (clamped)" 0 h.Obs.Metrics.min_v;
  Alcotest.(check (float 0.001)) "mean" 21.2 (Obs.Metrics.mean h)

(* The shard tier's merge path: K disjoint per-shard registries, merged in
   shard order, must report the same quantiles as one registry that saw
   every sample — exactly (buckets sum), and both within one sub-bucket
   (1/16 relative error) of the exact sample quantile. *)
let test_merge_quantiles () =
  let k = 4 and n = 4000 in
  let whole = Obs.Metrics.create () in
  let hw = Obs.Metrics.histogram whole "lat" in
  let parts = Array.init k (fun _ -> Obs.Metrics.create ()) in
  let samples = Array.make n 0 in
  let seed = ref 0x5eed in
  let next () =
    seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
    !seed
  in
  for i = 0 to n - 1 do
    let v = 1 + (next () mod 100_000) in
    samples.(i) <- v;
    Obs.Metrics.observe hw v;
    let p = parts.(i mod k) in
    Obs.Metrics.observe (Obs.Metrics.histogram p "lat") v;
    Obs.Metrics.gauge_max (Obs.Metrics.gauge p "peak") v;
    Obs.Metrics.gauge_max (Obs.Metrics.gauge whole "peak") v
  done;
  let merged = Obs.Metrics.create () in
  Array.iter (fun p -> Obs.Metrics.merge merged p) parts;
  let hm = Obs.Metrics.histogram merged "lat" in
  Alcotest.(check int) "merged count" n hm.Obs.Metrics.n;
  Alcotest.(check int) "merged sum" hw.Obs.Metrics.sum hm.Obs.Metrics.sum;
  Alcotest.(check int) "merged min" hw.Obs.Metrics.min_v hm.Obs.Metrics.min_v;
  Alcotest.(check int) "merged max" hw.Obs.Metrics.max_v hm.Obs.Metrics.max_v;
  Array.sort compare samples;
  List.iter
    (fun q ->
      let est_whole = Obs.Metrics.quantile hw q in
      let est_merged = Obs.Metrics.quantile hm q in
      Alcotest.(check int)
        (Printf.sprintf "q=%.2f: merged = single-registry" q)
        est_whole est_merged;
      let exact = samples.(max 0 (int_of_float (ceil (q *. float_of_int n)) - 1)) in
      let tol = (exact / Obs.Metrics.sub_count) + 1 in
      if est_merged < exact - tol || est_merged > exact + tol then
        Alcotest.failf "q=%.2f: merged estimate %d not within %d of exact %d" q
          est_merged tol exact)
    [ 0.25; 0.50; 0.90; 0.95; 0.99 ];
  (* gauges are high watermarks: the merge takes the max across shards *)
  Alcotest.(check int) "merged gauge = global high watermark"
    (Obs.Metrics.gauge whole "peak").Obs.Metrics.value
    (Obs.Metrics.gauge merged "peak").Obs.Metrics.value;
  (* merging copies: the merged handles never alias a shard's *)
  Alcotest.(check bool) "merged histogram does not alias a shard's" true
    (Array.for_all
       (fun p -> Obs.Metrics.histogram p "lat" != hm)
       parts)

let test_registry_handles () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "c" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  (* same name -> same handle *)
  Obs.Metrics.incr (Obs.Metrics.counter m "c");
  Alcotest.(check int) "counter accumulates through one handle" 6
    c.Obs.Metrics.count;
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics.histogram: c is a counter") (fun () ->
      ignore (Obs.Metrics.histogram m "c"));
  (* deterministic export: JSON object sorted by name, counters as ints *)
  ignore (Obs.Metrics.histogram m "a");
  match Obs.Metrics.to_json m with
  | J.Obj [ ("a", J.Obj _); ("c", J.Int 6) ] -> ()
  | j -> Alcotest.failf "unexpected metrics JSON %s" (J.to_string j)

(* Gauges: high-watermark readings, merged by maximum. *)
let test_gauges () =
  let m = Obs.Metrics.create () in
  let g = Obs.Metrics.gauge m "g" in
  Obs.Metrics.set g 5;
  Obs.Metrics.gauge_max g 3;
  Alcotest.(check int) "gauge_max keeps high-watermark" 5 g.Obs.Metrics.value;
  Obs.Metrics.gauge_max g 9;
  Alcotest.(check int) "gauge_max raises" 9 g.Obs.Metrics.value;
  (* same name -> same handle; kind clashes rejected *)
  Obs.Metrics.set (Obs.Metrics.gauge m "g") 2;
  Alcotest.(check int) "set through second handle" 2 g.Obs.Metrics.value;
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics.counter: g is a gauge") (fun () ->
      ignore (Obs.Metrics.counter m "g"));
  (* merge takes the maximum across sinks *)
  Obs.Metrics.set g 4;
  let dst = Obs.Metrics.create () in
  Obs.Metrics.set (Obs.Metrics.gauge dst "g") 7;
  Obs.Metrics.merge dst m;
  Alcotest.(check int) "merge keeps max" 7 (Obs.Metrics.gauge dst "g").Obs.Metrics.value;
  Obs.Metrics.set g 11;
  Obs.Metrics.merge dst m;
  Alcotest.(check int) "merge raises to src" 11
    (Obs.Metrics.gauge dst "g").Obs.Metrics.value;
  match Obs.Metrics.to_json m with
  | J.Obj [ ("g", J.Obj [ ("type", J.Str "gauge"); ("value", J.Int 11) ]) ] -> ()
  | j -> Alcotest.failf "unexpected gauge JSON %s" (J.to_string j)

(* ---- JSON printer / parser ---- *)

let test_json_roundtrip () =
  let doc =
    J.Obj
      [
        ("s", J.Str "a\"b\\c\nd");
        ("i", J.Int (-42));
        ("f", J.Float 1.5);
        ("b", J.Bool true);
        ("n", J.Null);
        ("l", J.List [ J.Int 1; J.Obj []; J.List [] ]);
      ]
  in
  Alcotest.(check bool) "pretty-printed text parses back to the same value"
    true
    (J.of_string (J.to_string doc) = doc);
  Alcotest.check_raises "trailing garbage rejected"
    (J.Parse_error "trailing garbage at 5") (fun () -> ignore (J.of_string "null x"))

(* ---- Chrome trace export ---- *)

let test_chrome_trace_wellformed () =
  let tr = Obs.Trace.create ~capacity:16 () in
  let emit tid kind = Obs.Trace.emit tr { Obs.Event.ts = 100; tid; ctx = 0; kind } in
  emit 0 Obs.Event.Txn_begin;
  emit 0 (Obs.Event.Txn_commit { cycles = 40; rs = 3; ws = 2; retries = 1 });
  emit 1
    (Obs.Event.Txn_abort
       {
         reason = "conflict";
         cycles = 25;
         rs = 2;
         ws = 1;
         line = 7;
         code = "block";
         pc = 3;
         op = "opt_plus";
       });
  emit 1 Obs.Event.Gil_acquire;
  emit 1 (Obs.Event.Gil_wait { cycles = 10 });
  emit 0 Obs.Event.Gc_start;
  emit 0 (Obs.Event.Gc_end { cycles = 500 });
  emit 1 (Obs.Event.Ctx_switch { prev_tid = 0 });
  (* the whole document must parse back *)
  let doc = J.of_string (J.to_string (Obs.Trace.to_chrome tr)) in
  let events =
    match J.member "traceEvents" doc with
    | Some (J.List l) -> l
    | _ -> Alcotest.fail "missing traceEvents"
  in
  Alcotest.(check int) "every emitted event exported" 8 (List.length events);
  List.iter
    (fun e ->
      List.iter
        (fun k ->
          if J.member k e = None then
            Alcotest.failf "event missing %S: %s" k (J.to_string e))
        [ "name"; "cat"; "ph"; "ts"; "pid"; "tid" ];
      match J.member "ph" e with
      | Some (J.Str "X") ->
          if J.member "dur" e = None then
            Alcotest.failf "interval event without dur: %s" (J.to_string e)
      | Some (J.Str "i") -> ()
      | _ -> Alcotest.failf "unexpected phase: %s" (J.to_string e))
    events;
  (* interval start = ts - dur: the commit at ts=100 with 40 cycles opens
     at 60 ns = 0.06 us *)
  let commit =
    List.find
      (fun e -> J.member "name" e = Some (J.Str "txn"))
      events
  in
  Alcotest.(check bool) "commit interval rewound to its begin" true
    (J.member "ts" commit = Some (J.Float 0.06))

let test_trace_disabled_and_wrap () =
  let tr = Obs.Trace.create ~capacity:2 ~enabled:false () in
  Obs.Trace.emit tr { Obs.Event.ts = 1; tid = 0; ctx = 0; kind = Obs.Event.Txn_begin };
  Alcotest.(check int) "disabled sink records nothing" 0 (Obs.Trace.total tr);
  Obs.Trace.set_enabled tr true;
  for ts = 1 to 5 do
    Obs.Trace.emit tr { Obs.Event.ts; tid = 0; ctx = 0; kind = Obs.Event.Txn_begin }
  done;
  Alcotest.(check int) "per-thread ring keeps the newest window" 2
    (List.length (Obs.Trace.events tr));
  Alcotest.(check int) "dropped counted" 3 (Obs.Trace.dropped tr)

(* ---- Stats: merge, export, ratios ---- *)

let test_stats_merge () =
  let open Htm_sim.Stats in
  let a = create () and b = create () in
  a.begins <- 10;
  a.commits <- 8;
  a.aborts_conflict <- 2;
  a.rs_total <- 40;
  a.rs_max <- 9;
  b.begins <- 5;
  b.commits <- 5;
  b.rs_total <- 10;
  b.rs_max <- 4;
  merge a b;
  Alcotest.(check int) "counters sum" 15 a.begins;
  Alcotest.(check int) "rs_total sums" 50 a.rs_total;
  Alcotest.(check int) "rs_max takes max" 9 a.rs_max;
  Alcotest.(check (float 1e-9)) "ratio over merged begins" (2.0 /. 15.0)
    (abort_ratio a);
  Alcotest.(check (float 1e-9)) "mean committed read-set" (50.0 /. 13.0)
    (mean_rs a);
  (* to_assoc carries every counter plus the aborts aggregate *)
  Alcotest.(check (option int)) "to_assoc: begins" (Some 15)
    (List.assoc_opt "begins" (to_assoc a));
  Alcotest.(check (option int)) "to_assoc: aborts aggregate" (Some 2)
    (List.assoc_opt "aborts" (to_assoc a))

let test_stats_edge_cases () =
  let open Htm_sim.Stats in
  let s = create () in
  Alcotest.(check (float 0.0)) "zero begins -> ratio 0" 0.0 (abort_ratio s);
  Alcotest.(check (float 0.0)) "zero commits -> mean rs 0" 0.0 (mean_rs s);
  (* eager-predictor kills count as aborts even with no completed window *)
  s.begins <- 4;
  record_abort s Htm_sim.Txn.Eager;
  record_abort s Htm_sim.Txn.Eager;
  Alcotest.(check int) "eager-only aborts aggregate" 2 (aborts s);
  Alcotest.(check (float 1e-9)) "eager-only ratio" 0.5 (abort_ratio s);
  let shown = Format.asprintf "%a" pp s in
  Alcotest.(check bool) "pp reports mean set sizes" true
    (contains ~affix:"rs-mean" shown)

(* ---- abort-site attribution ---- *)

let test_sites_report () =
  let s = Obs.Sites.create () in
  Obs.Sites.set_line_resolver s (fun line ->
      if line = 7 then Some "global free-list head" else None);
  for _ = 1 to 3 do
    Obs.Sites.record s ~code:"block" ~pc:4 ~op:"opt_plus" ~reason:"conflict"
      ~line:7
  done;
  Obs.Sites.record s ~code:"main" ~pc:9 ~op:"newarray" ~reason:"overflow-write"
    ~line:(-1);
  Alcotest.(check int) "total" 4 (Obs.Sites.total s);
  (match Obs.Sites.top_sites s 1 with
  | [ (site, cell) ] ->
      Alcotest.(check string) "hottest op" "opt_plus" site.Obs.Sites.s_op;
      Alcotest.(check int) "hottest count" 3 cell.Obs.Sites.n
  | _ -> Alcotest.fail "expected one top site");
  let report = Format.asprintf "%a" (fun f -> Obs.Sites.report f) s in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "report mentions %S" needle) true
        (contains ~affix:needle report))
    [
      "4 aborts";
      "top aborting bytecode sites:";
      "opt_plus";
      "75.0%";
      "line 7 (global free-list head)";
    ]

(* A contended counter: four threads hammering one Array cell under
   HTM-dynamic must produce conflict aborts, and the attribution must charge
   them to real bytecode sites. This is the golden end-to-end check for the
   Section 5.6-style report. *)
let contended_counter =
  {|counter = Array.new(1, 0)
ths = []
t = 0
while t < 4
  ths << Thread.new do
    i = 0
    while i < 400
      counter[0] += 1
      i += 1
    end
  end
  t += 1
end
ths.each { |th| th.join }
puts 0|}

let test_contended_attribution () =
  let tracer = Obs.Trace.create () in
  let cfg =
    Core.Runner.config ~tracer ~scheme:Core.Scheme.Htm_dynamic
      Htm_sim.Machine.zec12
  in
  let r = Core.Runner.run_source cfg ~source:contended_counter in
  let aborts = Htm_sim.Stats.aborts r.Core.Runner.htm_stats in
  Alcotest.(check bool) "workload aborts" true (aborts > 0);
  Alcotest.(check int) "every abort attributed" aborts
    (Obs.Sites.total r.Core.Runner.abort_sites);
  (match Obs.Sites.top_sites r.Core.Runner.abort_sites 1 with
  | [ (site, cell) ] ->
      Alcotest.(check bool) "top site carries a real opcode" true
        (site.Obs.Sites.s_op <> "?");
      Alcotest.(check bool) "top site dominates" true (cell.Obs.Sites.n > 0)
  | _ -> Alcotest.fail "no attributed sites");
  let report =
    Format.asprintf "%a" (fun f -> Obs.Sites.report f) r.Core.Runner.abort_sites
  in
  Alcotest.(check bool) "report names conflict reasons" true
    (contains ~affix:"conflict=" report);
  (* the trace saw the same story: begins, commits, aborts, GIL traffic *)
  let events = Obs.Trace.events tracer in
  let has name =
    List.exists (fun (e : Obs.Event.t) -> Obs.Event.name e.kind = name) events
  in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " events present") true (has n))
    [ "tbegin"; "txn"; "txn-abort"; "gil-acquire"; "ctx-switch" ];
  (* and the registry's histograms filled in *)
  (match
     List.assoc_opt "txn.committed_cycles"
       (Obs.Metrics.sorted r.Core.Runner.metrics)
   with
  | Some (Obs.Metrics.Histogram h) ->
      Alcotest.(check bool) "committed-cycles histogram populated" true
        (h.Obs.Metrics.n > 0)
  | _ -> Alcotest.fail "txn.committed_cycles missing");
  (* Chrome export of a real run parses *)
  match J.of_string (J.to_string (Obs.Trace.to_chrome tracer)) with
  | J.Obj _ -> ()
  | _ -> Alcotest.fail "chrome export not an object"

let suite =
  [
    Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "ring partial fill" `Quick test_ring_partial;
    Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
    Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
    Alcotest.test_case "histogram observe" `Quick test_histogram_observe;
    Alcotest.test_case "merge quantiles across registries" `Quick
      test_merge_quantiles;
    Alcotest.test_case "registry handles" `Quick test_registry_handles;
    Alcotest.test_case "gauges" `Quick test_gauges;
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "chrome trace wellformed" `Quick
      test_chrome_trace_wellformed;
    Alcotest.test_case "trace disabled + wrap" `Quick
      test_trace_disabled_and_wrap;
    Alcotest.test_case "stats merge + export" `Quick test_stats_merge;
    Alcotest.test_case "stats edge cases" `Quick test_stats_edge_cases;
    Alcotest.test_case "sites report" `Quick test_sites_report;
    Alcotest.test_case "contended counter attribution" `Quick
      test_contended_attribution;
  ]
