(* The domain worker pool, and the determinism contract behind it: a figure
   sweep fanned over several domains must produce exactly the data a
   sequential run produces. *)

let test_map_order () =
  List.iter
    (fun jobs ->
      let pool = Harness.Pool.create jobs in
      let xs = List.init 50 (fun i -> i) in
      let got = Harness.Pool.map pool (fun x -> x * x) xs in
      Harness.Pool.shutdown pool;
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d preserves order" jobs)
        (List.map (fun x -> x * x) xs)
        got)
    [ 1; 3 ]

exception Boom of int

let test_exception_propagation () =
  let pool = Harness.Pool.create 3 in
  let raised =
    try
      ignore
        (Harness.Pool.map pool
           (fun x -> if x mod 2 = 0 then raise (Boom x) else x)
           [ 1; 3; 4; 5; 6 ]);
      None
    with Boom x -> Some x
  in
  Harness.Pool.shutdown pool;
  (* first by input position, not by completion time *)
  Alcotest.(check (option int)) "first failing task wins" (Some 4) raised

let test_default_jobs_rejects_garbage () =
  (* only exercised when the variable is unset, as in the test runner *)
  match Sys.getenv_opt "BENCH_JOBS" with
  | Some _ -> ()
  | None -> Alcotest.(check int) "default" 1 (Harness.Pool.default_jobs ())

(* Symbol interning is domain-local and reset per session, so the ids a
   program's symbols get are a pure function of the program — on any domain,
   in any order. This is what makes guest hash-probe sequences (which hash
   symbol ids) reproducible under parallel sweeps. *)
let test_sym_ids_stable_across_domains () =
  Rvm.Sym.reset ();
  let a = Rvm.Sym.intern "pool_test_fresh_sym" in
  Rvm.Sym.reset ();
  let b = Rvm.Sym.intern "pool_test_fresh_sym" in
  let c =
    Domain.join
      (Domain.spawn (fun () ->
           Rvm.Sym.reset ();
           Rvm.Sym.intern "pool_test_fresh_sym"))
  in
  Rvm.Sym.reset ();
  Alcotest.(check int) "reset makes interning reproducible" a b;
  Alcotest.(check int) "fresh domains agree" a c

let panel_fingerprint (p : Harness.Figures.panel) =
  let dump tbl fmt_v =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort compare
    |> List.map (fun ((scheme, threads), v) ->
           Printf.sprintf "%s/%d=%s" scheme threads (fmt_v v))
    |> String.concat ";"
  in
  String.concat "\n"
    [
      Printf.sprintf "%s@%s base=%d" p.workload p.machine p.baseline_wall;
      dump p.cells (Printf.sprintf "%.17g");
      dump p.aborts (Printf.sprintf "%.17g");
      Obs.Json.to_string (Obs.Metrics.to_json p.metrics);
    ]

(* The acceptance check in miniature: the same panel swept with 1 worker
   and with 2 must be identical down to the merged metrics registry. *)
let test_panel_identical_across_jobs () =
  let run jobs =
    Harness.Pool.set_global_jobs jobs;
    Harness.Figures.run_panel
      ~schemes:[ Core.Scheme.Gil_only; Core.Scheme.Htm_dynamic ]
      ~size:Workloads.Size.Test ~machine:Htm_sim.Machine.zec12
      ~threads_list:[ 1; 2 ] "while"
  in
  let seq = panel_fingerprint (run 1) in
  let par = panel_fingerprint (run 2) in
  Harness.Pool.set_global_jobs 1;
  Alcotest.(check string) "BENCH_JOBS=1 and 2 agree byte-for-byte" seq par

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_order;
    Alcotest.test_case "map re-raises the first exception" `Quick
      test_exception_propagation;
    Alcotest.test_case "default jobs" `Quick test_default_jobs_rejects_garbage;
    Alcotest.test_case "symbol ids stable across domains" `Quick
      test_sym_ids_stable_across_domains;
    Alcotest.test_case "panel identical across worker counts" `Quick
      test_panel_identical_across_jobs;
  ]
