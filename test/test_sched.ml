(* The event-driven scheduler: unit tests of the indexed min-heap, and
   differential runs pinning the heap + run-ahead scheduler to the
   reference linear scan — same interleaving, same figures. *)

module Sched = Core.Sched
module V = Rvm.Vmthread

let dummy_code = lazy (Rvm.Compiler.compile_string "nil").Rvm.Value.main

let mk_thread tid =
  V.create ~tid ~stack_base:0 ~stack_limit:64 ~struct_base:0 ~obj:0
    ~code:(Lazy.force dummy_code)

let drain t =
  let rec go acc =
    match Sched.pop_min t with
    | Some th -> go (th.V.tid :: acc)
    | None -> acc
  in
  List.rev (go [])

let test_pop_order () =
  let t = Sched.create ~dummy:(mk_thread 0) in
  Alcotest.(check bool) "fresh heap empty" true (Sched.is_empty t);
  Alcotest.(check int) "empty min_key" max_int (Sched.min_key t);
  Alcotest.(check int) "empty min_tid" max_int (Sched.min_tid t);
  (* out-of-order keys, including a (clock, tid) tie at 5 *)
  List.iter
    (fun (k, tid) -> Sched.push t ~key:k (mk_thread tid))
    [ (5, 3); (1, 2); (5, 1); (0, 4); (3, 0) ];
  Alcotest.(check int) "size" 5 (Sched.size t);
  Alcotest.(check int) "min_key" 0 (Sched.min_key t);
  Alcotest.(check int) "min_tid" 4 (Sched.min_tid t);
  (* equal keys break toward the HIGHER tid, like the reference scan *)
  Alcotest.(check (list int)) "(key, tid desc) order" [ 4; 2; 0; 3; 1 ] (drain t);
  Alcotest.(check bool) "drained empty" true (Sched.is_empty t)

let test_rekey () =
  let t = Sched.create ~dummy:(mk_thread 0) in
  let a = mk_thread 1 and b = mk_thread 2 and c = mk_thread 3 in
  Sched.push t ~key:10 a;
  Sched.push t ~key:20 b;
  Sched.push t ~key:30 c;
  (* re-push = re-key, both directions, without growing the heap *)
  Sched.push t ~key:5 b;
  Sched.push t ~key:40 a;
  Alcotest.(check int) "size unchanged" 3 (Sched.size t);
  Alcotest.(check (list int)) "re-keyed order" [ 2; 3; 1 ] (drain t)

let test_mem_remove () =
  let t = Sched.create ~dummy:(mk_thread 0) in
  List.iter (fun tid -> Sched.push t ~key:tid (mk_thread tid)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "mem present" true (Sched.mem t 3);
  Alcotest.(check bool) "mem absent" false (Sched.mem t 9);
  Sched.remove t 3;
  Sched.remove t 1;
  Sched.remove t 42 (* no-op *);
  Alcotest.(check bool) "removed" false (Sched.mem t 3);
  Alcotest.(check int) "size after removes" 3 (Sched.size t);
  Alcotest.(check (list int)) "order after removes" [ 2; 4; 5 ] (drain t);
  Sched.push t ~key:7 (mk_thread 1);
  Alcotest.(check (list int)) "reusable after drain" [ 1 ] (drain t)

(* Random push/re-key/remove traffic against a sorted-list model. *)
let test_randomized_vs_model =
  let gen = QCheck.(list (pair (int_bound 50) (int_bound 19))) in
  Tutil.qtest "heap agrees with sorted model" ~count:200 gen (fun ops ->
      let t = Sched.create ~dummy:(mk_thread 0) in
      let threads = Array.init 20 mk_thread in
      let model = Hashtbl.create 16 in
      List.iteri
        (fun i (key, tid) ->
          if i mod 5 = 4 then begin
            Sched.remove t tid;
            Hashtbl.remove model tid
          end
          else begin
            Sched.push t ~key threads.(tid);
            Hashtbl.replace model tid key
          end)
        ops;
      let expect =
        Hashtbl.fold (fun tid key acc -> (key, tid) :: acc) model []
        |> List.sort (fun (k1, t1) (k2, t2) ->
               if k1 <> k2 then compare k1 k2 else compare t2 t1)
        |> List.map snd
      in
      drain t = expect)

(* ---- differential: heap + run-ahead vs the reference linear scan ---- *)

let assert_same_run name (a : Core.Runner.result) (b : Core.Runner.result) =
  Alcotest.(check int) (name ^ ": wall_cycles") a.wall_cycles b.wall_cycles;
  Alcotest.(check int) (name ^ ": total_insns") a.total_insns b.total_insns;
  Alcotest.(check string) (name ^ ": output") a.output b.output;
  Alcotest.(check int)
    (name ^ ": gil acquisitions")
    a.gil_acquisitions b.gil_acquisitions;
  Alcotest.(check int)
    (name ^ ": txn begins")
    a.htm_stats.Htm_sim.Stats.begins b.htm_stats.Htm_sim.Stats.begins;
  Alcotest.(check int)
    (name ^ ": txn commits")
    a.htm_stats.Htm_sim.Stats.commits b.htm_stats.Htm_sim.Stats.commits;
  Alcotest.(check int)
    (name ^ ": requests completed")
    a.requests_completed b.requests_completed

let run_compute ~sched ~scheme (w : Workloads.Workload.t) ~threads =
  let source = w.Workloads.Workload.source ~threads ~size:Workloads.Size.Test in
  let cfg = Core.Runner.config ~scheme ~sched Htm_sim.Machine.zec12 in
  Core.Runner.run_source ~setup:(w.Workloads.Workload.setup None) cfg ~source

let test_diff_compute () =
  let workloads =
    Workloads.Workload.micro
    @ List.filter
        (fun (w : Workloads.Workload.t) -> w.name = "cg" || w.name = "is")
        Workloads.Workload.npb
  in
  List.iter
    (fun (w : Workloads.Workload.t) ->
      List.iter
        (fun scheme ->
          List.iter
            (fun threads ->
              let name =
                Printf.sprintf "%s/%s/%dT" w.name
                  (Core.Scheme.to_string scheme)
                  threads
              in
              let heap =
                run_compute ~sched:Core.Runner.Sched_heap ~scheme w ~threads
              and ref_ =
                run_compute ~sched:Core.Runner.Sched_ref ~scheme w ~threads
              in
              assert_same_run name heap ref_)
            [ 1; 2; 4 ])
        [ Core.Scheme.Gil_only; Core.Scheme.Htm_dynamic ])
    workloads

(* The server path exercises netsim delivery, sleepers and acceptors; the
   scheduler is selected through the BENCH_SCHED environment default, which
   also covers the smoke script's plumbing. *)
let test_diff_server () =
  let w = Option.get (Workloads.Workload.find "webrick") in
  let run kind =
    Unix.putenv "BENCH_SCHED" (match kind with `Heap -> "heap" | `Ref -> "ref");
    Fun.protect
      ~finally:(fun () -> Unix.putenv "BENCH_SCHED" "")
      (fun () ->
        let o =
          Harness.Exp.run
            (Harness.Exp.point ~workload:w ~machine:Htm_sim.Machine.xeon_e3
               ~scheme:Core.Scheme.Htm_dynamic ~threads:3
               ~size:Workloads.Size.Test ())
        in
        o.Harness.Exp.result)
  in
  let heap = run `Heap and ref_ = run `Ref in
  Alcotest.(check bool) "served requests" true (heap.requests_completed > 0);
  assert_same_run "webrick/htm-dynamic/3c" heap ref_

let suite =
  [
    Alcotest.test_case "pop order" `Quick test_pop_order;
    Alcotest.test_case "re-key" `Quick test_rekey;
    Alcotest.test_case "mem + remove" `Quick test_mem_remove;
    test_randomized_vs_model;
    Alcotest.test_case "heap = ref scan (compute)" `Quick test_diff_compute;
    Alcotest.test_case "heap = ref scan (server)" `Quick test_diff_server;
  ]
