(* The shard tier: N full VM instances behind the netsim load balancer.
   The merged result must be a pure function of the simulated semantics —
   identical across the SHARDS placement knob, worker counts, and both
   scheduler/interpreter tiers — and sharding must actually scale. *)

let with_env key value f =
  Unix.putenv key value;
  Fun.protect ~finally:(fun () -> Unix.putenv key "") f

(* ---- Runner.advance vs Runner.run: pause/resume is invisible ---------- *)

let load_point () =
  Harness.Exp.point ~arrivals:(Netsim.Poisson { rate = 4000.0; seed = 0x10AD })
    ~workload:Workloads.Workload.webrick ~machine:Htm_sim.Machine.zec12
    ~scheme:Core.Scheme.Htm_dynamic ~threads:4 ~size:Workloads.Size.Test ()

let run_server_via mode =
  let p = load_point () in
  let requests =
    p.Harness.Exp.workload.Workloads.Workload.server_requests p.Harness.Exp.size
  in
  let io =
    match p.Harness.Exp.workload.Workloads.Workload.make_io_open with
    | Some f ->
        f ~clients:4 ~requests ~arrivals:p.Harness.Exp.arrivals ~mix:[]
    | None -> assert false
  in
  let cfg =
    Core.Runner.config ~scheme:p.Harness.Exp.scheme Htm_sim.Machine.zec12
  in
  let t = Core.Runner.create ~io cfg ~source:Workloads.Webrick.guest_source in
  p.Harness.Exp.workload.Workloads.Workload.setup (Some io)
    t.Core.Runner.vm;
  let stop () = Netsim.done_all io in
  let r =
    match mode with
    | `Run -> Core.Runner.run ~stop t
    | `Advance step ->
        let rec go h =
          match Core.Runner.advance ~stop t ~until:h with
          | `Done r -> r
          | `Paused -> go (h + step)
        in
        go step
  in
  let lat = Obs.Metrics.histogram r.Core.Runner.metrics "req.latency_cycles" in
  ( r.Core.Runner.wall_cycles,
    r.Core.Runner.total_insns,
    Netsim.completed io,
    Netsim.dropped io,
    Netsim.timed_out io,
    Obs.Metrics.quantile lat 0.99,
    r.Core.Runner.htm_stats.Htm_sim.Stats.commits,
    Htm_sim.Stats.aborts r.Core.Runner.htm_stats )

let test_advance_equals_run () =
  let full = run_server_via `Run in
  let stepped = run_server_via (`Advance 100_000) in
  Alcotest.(check bool)
    "horizon-stepped run is identical to the unbounded one" true
    (full = stepped);
  let fine = run_server_via (`Advance 13_333) in
  Alcotest.(check bool) "step size is invisible" true (full = fine)

(* ---- the shard fleet ---------------------------------------------------- *)

let shard_cfg ?(shards = 2) ?(policy = Harness.Shard.Round_robin)
    ?(shared_session = false) ?(rate = 6000.0) ?(requests = 60) ?mix () =
  Harness.Shard.config ~policy ~shared_session
    ?mix
    ~workload:Workloads.Workload.webrick ~machine:Htm_sim.Machine.zec12
    ~scheme:Core.Scheme.Htm_dynamic ~shards ~clients:4
    ~size:Workloads.Size.Test
    ~arrivals:(Netsim.Poisson { rate; seed = 0x10AD })
    ~requests ()

(* A canonical text form of everything the shard digest will cover. *)
let fingerprint (r : Harness.Shard.result) =
  let per_shard =
    List.map
      (fun s ->
        Printf.sprintf "%d/%d/%d/%d/%d/%d/%d/%d"
          s.Harness.Shard.sh_assigned s.Harness.Shard.sh_completed
          s.Harness.Shard.sh_dropped s.Harness.Shard.sh_timed_out
          s.Harness.Shard.sh_htm_commits s.Harness.Shard.sh_htm_aborts
          s.Harness.Shard.sh_fb_gil s.Harness.Shard.sh_fb_stm)
      r.Harness.Shard.r_per_shard
  in
  Printf.sprintf "%d %d %d %d %d %d %d %d %.6f %.6f %d %d %d [%s]%s"
    r.Harness.Shard.r_shards r.Harness.Shard.r_issued
    r.Harness.Shard.r_completed r.Harness.Shard.r_dropped
    r.Harness.Shard.r_timed_out r.Harness.Shard.r_p50_cycles
    r.Harness.Shard.r_p95_cycles r.Harness.Shard.r_p99_cycles
    r.Harness.Shard.r_mean_cycles r.Harness.Shard.r_aggregate_rps
    r.Harness.Shard.r_htm.Htm_sim.Stats.commits
    r.Harness.Shard.r_fb_gil r.Harness.Shard.r_fb_stm
    (String.concat ";" per_shard)
    (match r.Harness.Shard.r_session with
    | None -> ""
    | Some s ->
        Printf.sprintf " session:%d/%d/%d/%d/%d/%d/%d" s.Harness.Shard.sn_updates
          s.Harness.Shard.sn_waves s.Harness.Shard.sn_htm_commits
          s.Harness.Shard.sn_htm_aborts s.Harness.Shard.sn_stm_commits
          s.Harness.Shard.sn_stm_aborts s.Harness.Shard.sn_gil_falls)

let test_placement_stability () =
  let cfg = shard_cfg ~shards:3 ~policy:Harness.Shard.Least_in_flight () in
  let one = fingerprint (Harness.Shard.run ~jobs:1 cfg) in
  let four = fingerprint (Harness.Shard.run ~jobs:4 cfg) in
  Alcotest.(check string) "SHARDS placement is invisible" one four

let test_tier_stability () =
  let cfg = shard_cfg ~shards:2 ~policy:Harness.Shard.Least_in_flight () in
  let go () = fingerprint (Harness.Shard.run ~jobs:2 cfg) in
  let base = go () in
  let ref_sched = with_env "BENCH_SCHED" "ref" go in
  Alcotest.(check string) "reference scheduler identical" base ref_sched;
  let ref_interp = with_env "BENCH_INTERP" "ref" go in
  Alcotest.(check string) "reference interpreter identical" base ref_interp

let test_round_robin_split () =
  let cfg = shard_cfg ~shards:3 () in
  let r = Harness.Shard.run ~jobs:1 cfg in
  let assigned =
    List.map (fun s -> s.Harness.Shard.sh_assigned) r.Harness.Shard.r_per_shard
  in
  Alcotest.(check (list int)) "upfront i mod n assignment" [ 20; 20; 20 ]
    assigned;
  Alcotest.(check int) "every request accounted" 60
    (r.Harness.Shard.r_completed + r.Harness.Shard.r_dropped
   + r.Harness.Shard.r_timed_out)

let test_least_in_flight_balances () =
  let cfg =
    shard_cfg ~shards:3 ~policy:Harness.Shard.Least_in_flight ~rate:9000.0 ()
  in
  let r = Harness.Shard.run ~jobs:1 cfg in
  let assigned =
    List.map (fun s -> s.Harness.Shard.sh_assigned) r.Harness.Shard.r_per_shard
  in
  Alcotest.(check int) "all arrivals assigned" 60
    (List.fold_left ( + ) 0 assigned);
  Alcotest.(check bool) "no shard starves" true
    (List.for_all (fun a -> a > 0) assigned);
  Alcotest.(check int) "every request accounted" 60
    (r.Harness.Shard.r_completed + r.Harness.Shard.r_dropped
   + r.Harness.Shard.r_timed_out)

(* Shared-nothing scaling: the acceptance criterion's shape at test size.
   An oversaturating rate caps one shard at its accept-queue capacity
   (half the stream drops at the full queue); four shards spread the same
   stream, drop nothing and drain it in parallel. The request count is
   large enough to amortise the per-shard VM boot cost. *)
let test_scaling () =
  let rps shards =
    (Harness.Shard.run ~jobs:shards
       (shard_cfg ~shards ~rate:400_000.0 ~requests:480 ()))
      .Harness.Shard.r_aggregate_rps
  in
  let one = rps 1 and four = rps 4 in
  Alcotest.(check bool)
    (Printf.sprintf "4 shards >= 3x 1 shard (%.0f vs %.0f rps)" four one)
    true
    (four >= 3.0 *. one)

let test_shared_session () =
  let cfg =
    shard_cfg ~shards:4 ~policy:Harness.Shard.Round_robin ~shared_session:true
      ~rate:9000.0 ()
  in
  let r = Harness.Shard.run ~jobs:2 cfg in
  match r.Harness.Shard.r_session with
  | None -> Alcotest.fail "session stats missing"
  | Some s ->
      Alcotest.(check int) "one slot update per completion"
        r.Harness.Shard.r_completed s.Harness.Shard.sn_updates;
      Alcotest.(check bool) "waves ran" true (s.Harness.Shard.sn_waves > 0);
      let resolved =
        s.Harness.Shard.sn_htm_commits + s.Harness.Shard.sn_stm_commits
        + s.Harness.Shard.sn_gil_falls
      in
      Alcotest.(check bool) "every transaction resolved somehow" true
        (resolved > 0 && resolved <= s.Harness.Shard.sn_waves * 4);
      (* replay again from the same logs: bit-identical *)
      let r2 = Harness.Shard.run ~jobs:1 cfg in
      Alcotest.(check string) "replay deterministic" (fingerprint r)
        (fingerprint r2)

(* ---- request mixes ------------------------------------------------------ *)

let test_mix_draw () =
  let mix = Workloads.Webrick.mix in
  let arrivals = Netsim.Poisson { rate = 5000.0; seed = 42 } in
  let sched ~mix =
    Workloads.Webrick.make_schedule ~clients:4 ~requests:40 ~arrivals ~mix
  in
  let entries, _ = sched ~mix in
  let entries2, _ = sched ~mix in
  Alcotest.(check bool) "class draw deterministic" true (entries = entries2);
  let plain, _ = sched ~mix:[] in
  Alcotest.(check bool) "mix leaves the gap stream untouched" true
    (Array.for_all2
       (fun a b -> a.Netsim.se_at = b.Netsim.se_at)
       entries plain);
  let regex =
    Array.to_list entries
    |> List.filter (fun e ->
           String.length e.Netsim.se_request > 11
           && String.sub e.Netsim.se_request 4 7 = "/search")
  in
  Alcotest.(check bool) "both classes drawn" true
    (List.length regex > 0 && List.length regex < 40)

let test_mix_served () =
  (* a mixed open-loop run completes and accounts everything *)
  let o =
    Harness.Exp.run
      (Harness.Exp.point
         ~arrivals:(Netsim.Poisson { rate = 4000.0; seed = 7 })
         ~mix:Workloads.Webrick.mix ~workload:Workloads.Workload.webrick
         ~machine:Htm_sim.Machine.zec12 ~scheme:Core.Scheme.Gil_only
         ~threads:4 ~size:Workloads.Size.Test ())
  in
  match o.Harness.Exp.load with
  | None -> Alcotest.fail "no load summary"
  | Some l ->
      Alcotest.(check int) "every request accounted" 60
        (l.Harness.Exp.completed + l.Harness.Exp.dropped
       + l.Harness.Exp.timed_out)

let suite =
  [
    Alcotest.test_case "advance ≡ run" `Quick test_advance_equals_run;
    Alcotest.test_case "placement stability" `Quick test_placement_stability;
    Alcotest.test_case "tier stability" `Quick test_tier_stability;
    Alcotest.test_case "round-robin split" `Quick test_round_robin_split;
    Alcotest.test_case "least-in-flight balances" `Quick
      test_least_in_flight_balances;
    Alcotest.test_case "shared-nothing scaling" `Slow test_scaling;
    Alcotest.test_case "shared session store" `Quick test_shared_session;
    Alcotest.test_case "mix: deterministic class draw" `Quick test_mix_draw;
    Alcotest.test_case "mix: served end-to-end" `Quick test_mix_served;
  ]
