(* The software-transaction fallback: TL2-style engine unit tests, a
   differential serializability fuzz against a single-global-lock reference
   executor (the shadow store applies each committed transaction atomically),
   guest-level equivalence of the hybrid/stm schemes, and the performance
   property the subsystem exists for: under capacity pressure, retrying as a
   software transaction beats falling back to the GIL. *)

open Htm_sim

let machine = { Machine.zec12 with name = "stm-test"; n_cores = 4; smt = 1 }

let mk () =
  let store = Store.create ~dummy:0 ~line_cells:machine.line_cells 256 in
  let htm = Htm.create machine store in
  for ctx = 0 to 3 do
    Htm.set_occupied htm ctx true
  done;
  let stm = Stm.create ~mk_clock:(fun n -> n) htm in
  let region = Store.reserve_aligned store (8 * machine.line_cells) in
  (store, htm, stm, region)

(* --- engine unit tests ------------------------------------------------- *)

let test_redo_isolation () =
  let store, htm, stm, a = mk () in
  Store.set store a 7;
  Stm.begin_ stm ~ctx:0 ~rollback:(fun _ -> ());
  Htm.write htm ~ctx:0 a 42;
  Alcotest.(check int) "read own redo entry" 42 (Htm.read htm ~ctx:0 a);
  Alcotest.(check int) "store untouched before commit" 7 (Store.get store a);
  Alcotest.(check int) "header peek sees the redo log" 42 (Htm.peek htm a);
  Alcotest.(check int) "validation clean" (-1) (Stm.validate stm ~ctx:0);
  Stm.commit stm ~ctx:0;
  Alcotest.(check int) "published at commit" 42 (Store.get store a);
  Alcotest.(check bool) "transaction closed" false (Stm.in_txn stm 0)

let test_per_read_validation_abort () =
  let _, htm, stm, a = mk () in
  let rolled_back = ref false in
  Stm.begin_ stm ~ctx:0 ~rollback:(fun _ -> rolled_back := true);
  ignore (Htm.read htm ~ctx:0 a);
  (* a committed write from another context invalidates the snapshot *)
  Htm.write htm ~ctx:1 a 9;
  (match Htm.read htm ~ctx:0 (a + 1) with
  | _ -> Alcotest.fail "read after conflicting commit must abort"
  | exception Htm.Abort_now Txn.Validation -> ());
  Alcotest.(check bool) "rollback closure ran" true !rolled_back;
  Alcotest.(check bool) "pending abort recorded" true
    (Stm.pending_abort stm 0 = Some Txn.Validation);
  Stm.clear_pending_abort stm 0

let test_commit_time_validation () =
  let _, htm, stm, a = mk () in
  Stm.begin_ stm ~ctx:0 ~rollback:(fun _ -> ());
  ignore (Htm.read htm ~ctx:0 a);
  Htm.write htm ~ctx:1 a 9;
  let line = Stm.validate stm ~ctx:0 in
  Alcotest.(check bool) "validate names the stale line" true (line >= 0);
  Stm.abort stm ~ctx:0 ~line Txn.Validation;
  Stm.clear_pending_abort stm 0;
  Alcotest.(check bool) "aborted" false (Stm.in_txn stm 0)

let test_sw_read_aborts_hw_writer () =
  let _, htm, stm, a = mk () in
  Store.set (Htm.store htm) a 7;
  Htm.tbegin htm ~ctx:1 ~rollback:(fun _ -> ());
  Htm.write htm ~ctx:1 a 99;
  Stm.begin_ stm ~ctx:0 ~rollback:(fun _ -> ());
  (* requester wins: the software read kills the speculative writer and
     sees the committed value *)
  Alcotest.(check int) "reads committed value" 7 (Htm.read htm ~ctx:0 a);
  Alcotest.(check bool) "hardware writer aborted" false (Htm.in_txn htm 1);
  Alcotest.(check bool) "writer saw a conflict" true
    (Htm.pending_abort htm 1 = Some Txn.Conflict);
  Htm.clear_pending_abort htm 1;
  Stm.abort stm ~ctx:0 Txn.Explicit;
  Stm.clear_pending_abort stm 0

let test_sw_commit_aborts_hw_reader () =
  let _, htm, stm, a = mk () in
  Htm.tbegin htm ~ctx:1 ~rollback:(fun _ -> ());
  ignore (Htm.read htm ~ctx:1 a);
  Stm.begin_ stm ~ctx:0 ~rollback:(fun _ -> ());
  Htm.write htm ~ctx:0 a 5;
  Alcotest.(check int) "validation clean" (-1) (Stm.validate stm ~ctx:0);
  Stm.commit stm ~ctx:0;
  Alcotest.(check bool) "hardware reader aborted by publish" false
    (Htm.in_txn htm 1);
  Htm.clear_pending_abort htm 1

let test_hw_commit_fails_sw_validation () =
  let _, htm, stm, a = mk () in
  Stm.begin_ stm ~ctx:0 ~rollback:(fun _ -> ());
  ignore (Htm.read htm ~ctx:0 a);
  Htm.tbegin htm ~ctx:1 ~rollback:(fun _ -> ());
  Htm.write htm ~ctx:1 a 3;
  Htm.tend htm ~ctx:1;
  (* the hardware commit stamped the line, so the snapshot is stale *)
  Alcotest.(check bool) "hardware commit detected" true
    (Stm.validate stm ~ctx:0 >= 0);
  Stm.abort stm ~ctx:0 Txn.Validation;
  Stm.clear_pending_abort stm 0

let test_commit_bumps_clock () =
  let _, htm, stm, a = mk () in
  let before = Htm.commit_clock htm in
  Stm.begin_ stm ~ctx:0 ~rollback:(fun _ -> ());
  Htm.write htm ~ctx:0 a 1;
  assert (Stm.validate stm ~ctx:0 < 0);
  Stm.commit stm ~ctx:0;
  Alcotest.(check bool) "commit clock advanced" true
    (Htm.commit_clock htm > before);
  let ro_before = (Stm.stats stm).Stm.read_only_commits in
  Stm.begin_ stm ~ctx:0 ~rollback:(fun _ -> ());
  ignore (Htm.read htm ~ctx:0 a);
  assert (Stm.validate stm ~ctx:0 < 0);
  Stm.commit stm ~ctx:0;
  Alcotest.(check int) "read-only commit counted" (ro_before + 1)
    (Stm.stats stm).Stm.read_only_commits

let test_budget () =
  let b = Stm.Budget.create ~initial:8 ~min_budget:1 () in
  Alcotest.(check int) "initial allowance" 8
    (Stm.Budget.allowed b ~uid:3 ~pc:14);
  Stm.Budget.punish b ~uid:3 ~pc:14;
  Stm.Budget.punish b ~uid:3 ~pc:14;
  Alcotest.(check int) "halved twice" 2 (Stm.Budget.allowed b ~uid:3 ~pc:14);
  for _ = 1 to 4 do
    Stm.Budget.punish b ~uid:3 ~pc:14
  done;
  Alcotest.(check int) "floored at the minimum" 1
    (Stm.Budget.allowed b ~uid:3 ~pc:14);
  for _ = 1 to 20 do
    Stm.Budget.reward b ~uid:3 ~pc:14
  done;
  Alcotest.(check bool) "recovers, capped at the initial" true
    (Stm.Budget.allowed b ~uid:3 ~pc:14 <= 8
    && Stm.Budget.allowed b ~uid:3 ~pc:14 > 1);
  Alcotest.(check int) "other sites unaffected" 8
    (Stm.Budget.allowed b ~uid:0 ~pc:0)

(* --- scheme name round-trips (satellite 1) ----------------------------- *)

let test_scheme_round_trip () =
  let kinds =
    [
      Core.Scheme.Gil_only;
      Core.Scheme.Htm_fixed 1;
      Core.Scheme.Htm_fixed 16;
      Core.Scheme.Htm_fixed 256;
      Core.Scheme.Htm_dynamic;
      Core.Scheme.Hybrid;
      Core.Scheme.Stm_only;
      Core.Scheme.Fine_grained;
      Core.Scheme.Free_parallel;
    ]
  in
  List.iter
    (fun k ->
      let s = Core.Scheme.to_string k in
      Alcotest.(check bool)
        (Printf.sprintf "%s round-trips" s)
        true
        (Core.Scheme.of_string s = k))
    kinds;
  match Core.Scheme.of_string "bogus" with
  | _ -> Alcotest.fail "bogus scheme name accepted"
  | exception Invalid_argument msg ->
      let contains needle =
        let nl = String.length needle and ml = String.length msg in
        let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
        go 0
      in
      List.iter
        (fun name ->
          Alcotest.(check bool)
            (Printf.sprintf "error message lists %s" name)
            true (contains name))
        [ "gil"; "htm-N"; "htm-dynamic"; "hybrid"; "stm"; "fine-grained";
          "free-parallel" ]

(* --- differential serializability fuzz (satellite 3) -------------------

   Random hardware and software transactions, plus plain committed accesses,
   interleaved one access at a time across four contexts over a small shared
   region. The oracle is a single-global-lock reference executor: a shadow
   array to which each transaction's writes are applied atomically at its
   commit. Serializability of the mix means every successful read returns
   either the reader's own uncommitted write or the reference store's
   current value, and the store equals the reference whenever nothing is
   speculative. *)

type fuzz_ctx = {
  mutable mode : [ `Idle | `Hw | `Sw ];
  pend : (int, int) Hashtbl.t;  (* uncommitted writes, addr -> value *)
}

let test_fuzz_serializable () =
  let n_ctx = 4 in
  let run seed steps =
    let rng = Random.State.make [| seed |] in
    let store = Store.create ~dummy:0 ~line_cells:machine.line_cells 256 in
    let htm = Htm.create machine store in
    for ctx = 0 to n_ctx - 1 do
      Htm.set_occupied htm ctx true
    done;
    let stm = Stm.create ~mk_clock:(fun n -> n) htm in
    let lines = 8 in
    let region = Store.reserve_aligned store (lines * machine.line_cells) in
    let cells = lines * machine.line_cells in
    let shadow = Array.make cells 0 in
    let ctxs =
      Array.init n_ctx (fun _ -> { mode = `Idle; pend = Hashtbl.create 32 })
    in
    let reset c =
      c.mode <- `Idle;
      Hashtbl.reset c.pend
    in
    (* requester-wins kills and capacity aborts land synchronously inside
       another context's access; fold them into the oracle afterwards *)
    let sync () =
      Array.iteri
        (fun i c ->
          let live =
            match c.mode with
            | `Idle -> true
            | `Hw -> Htm.in_txn htm i
            | `Sw -> Stm.in_txn stm i
          in
          if not live then begin
            reset c;
            Htm.clear_pending_abort htm i;
            Stm.clear_pending_abort stm i
          end)
        ctxs
    in
    let expected c addr =
      match Hashtbl.find_opt c.pend addr with
      | Some v -> v
      | None -> shadow.(addr - region)
    in
    let check_store_matches step =
      if Htm.active_count htm = 0 then
        for i = 0 to cells - 1 do
          if Store.get store (region + i) <> shadow.(i) then
            Alcotest.fail
              (Printf.sprintf
                 "seed %d step %d: store[%d] = %d, reference executor has %d"
                 seed step i
                 (Store.get store (region + i))
                 shadow.(i))
        done
    in
    for step = 1 to steps do
      let ctx = Random.State.int rng n_ctx in
      let c = ctxs.(ctx) in
      let addr = region + Random.State.int rng cells in
      let v = Random.State.int rng 1000 in
      (match c.mode with
      | `Idle -> (
          match Random.State.int rng 10 with
          | 0 | 1 ->
              Htm.tbegin htm ~ctx ~rollback:(fun _ -> ());
              c.mode <- `Hw
          | 2 | 3 ->
              Stm.begin_ stm ~ctx ~rollback:(fun _ -> ());
              c.mode <- `Sw
          | 4 | 5 | 6 ->
              (* plain committed access: visible to the reference at once *)
              Htm.write htm ~ctx addr v;
              shadow.(addr - region) <- v
          | _ ->
              let got = Htm.read htm ~ctx addr in
              if got <> shadow.(addr - region) then
                Alcotest.fail
                  (Printf.sprintf
                     "seed %d step %d: committed read %d, reference %d" seed
                     step got
                     shadow.(addr - region)))
      | `Hw | `Sw -> (
          match Random.State.int rng 10 with
          | 0 | 1 | 2 | 3 -> (
              match Htm.read htm ~ctx addr with
              | got ->
                  let want = expected c addr in
                  if got <> want then
                    Alcotest.fail
                      (Printf.sprintf
                         "seed %d step %d ctx %d: transactional read %d, \
                          serial order requires %d"
                         seed step ctx got want)
              | exception Htm.Abort_now _ -> reset c)
          | 4 | 5 | 6 -> (
              match Htm.write htm ~ctx addr v with
              | () -> Hashtbl.replace c.pend addr v
              | exception Htm.Abort_now _ -> reset c)
          | 7 | 8 -> (
              (* try to commit *)
              match c.mode with
              | `Hw -> (
                  match Htm.tend htm ~ctx with
                  | () ->
                      Hashtbl.iter
                        (fun a v -> shadow.(a - region) <- v)
                        c.pend;
                      reset c
                  | exception Htm.Abort_now _ -> reset c)
              | `Sw ->
                  let line = Stm.validate stm ~ctx in
                  if line < 0 then begin
                    Stm.commit stm ~ctx;
                    Hashtbl.iter
                      (fun a v -> shadow.(a - region) <- v)
                      c.pend
                  end
                  else Stm.abort stm ~ctx ~line Txn.Validation;
                  reset c
              | `Idle -> assert false)
          | _ ->
              (match c.mode with
              | `Hw -> (
                  try Htm.tabort htm ~ctx Txn.Explicit
                  with Htm.Abort_now _ -> ())
              | `Sw -> Stm.abort stm ~ctx Txn.Explicit
              | `Idle -> assert false);
              reset c));
      Htm.clear_pending_abort htm ctx;
      Stm.clear_pending_abort stm ctx;
      sync ();
      if step mod 64 = 0 then check_store_matches step
    done;
    (* drain and do the final reference comparison *)
    for ctx = 0 to n_ctx - 1 do
      (match ctxs.(ctx).mode with
      | `Hw when Htm.in_txn htm ctx -> (
          try Htm.tabort htm ~ctx Txn.Explicit with Htm.Abort_now _ -> ())
      | `Sw when Stm.in_txn stm ctx -> Stm.abort stm ~ctx Txn.Explicit
      | _ -> ());
      Htm.clear_pending_abort htm ctx;
      Stm.clear_pending_abort stm ctx
    done;
    check_store_matches steps;
    let s = Stm.stats stm in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d exercised software commits" seed)
      true (s.Stm.commits > 0)
  in
  List.iter (fun seed -> run seed 10_000) [ 7; 21; 42 ]

(* --- guest-level differential checks ----------------------------------- *)

let fallback_schemes = [ Core.Scheme.Stm_only; Core.Scheme.Hybrid ]

let equivalence_for ?opts name threads =
  let w =
    match Workloads.Workload.find name with
    | Some w -> w
    | None -> Alcotest.fail ("no workload " ^ name)
  in
  let source = w.source ~threads ~size:Workloads.Size.Test in
  let reference = Tutil.output ?opts ~scheme:Core.Scheme.Gil_only source in
  Alcotest.(check bool) "reference non-empty" true (String.length reference > 0);
  List.iter
    (fun scheme ->
      let out = Tutil.output ?opts ~scheme source in
      Alcotest.(check string)
        (Printf.sprintf "%s under %s" name (Core.Scheme.to_string scheme))
        reference out)
    fallback_schemes

let test_equiv_cg () = equivalence_for "cg" 6
let test_equiv_is () = equivalence_for "is" 4
let test_equiv_mg () = equivalence_for "mg" 4

let test_equiv_under_gc_pressure () =
  (* a small heap forces collections mid-run, exercising the
     GIL-acquisition path that must kill every live software transaction
     before the collector mutates the store around the engine *)
  let opts = { Rvm.Options.default with Rvm.Options.heap_slots = 6_000 } in
  let w = Option.get (Workloads.Workload.find "webrick") in
  let run scheme =
    let o =
      Harness.Exp.run
        (Harness.Exp.point ~opts ~workload:w ~machine:Machine.zec12 ~scheme
           ~threads:4 ~size:Workloads.Size.Test ())
    in
    Alcotest.(check bool)
      ("gc ran under " ^ Core.Scheme.to_string scheme)
      true
      (o.Harness.Exp.result.Core.Runner.gc_runs > 0);
    ( o.Harness.Exp.result.Core.Runner.requests_completed,
      o.Harness.Exp.result.Core.Runner.output )
  in
  let ((ref_requests, _) as reference) = run Core.Scheme.Gil_only in
  Alcotest.(check bool) "reference served requests" true (ref_requests > 0);
  List.iter
    (fun scheme ->
      Alcotest.(check bool)
        ("webrick under " ^ Core.Scheme.to_string scheme)
        true
        (run scheme = reference))
    fallback_schemes

let test_equiv_capacity_pressure () =
  (* the quarter-store-buffer machine drives everything through the
     fallback path, on both fallback strategies *)
  let w = Option.get (Workloads.Workload.find "mg") in
  let source = w.source ~threads:4 ~size:Workloads.Size.Test in
  let machine = Harness.Figures.hybrid_machine in
  let reference = Tutil.output ~machine ~scheme:Core.Scheme.Gil_only source in
  List.iter
    (fun scheme ->
      Alcotest.(check string)
        (Core.Scheme.to_string scheme ^ " on the capacity-starved machine")
        reference
        (Tutil.output ~machine ~scheme source))
    fallback_schemes

let test_finish_inside_failing_window () =
  (* a thread whose FINAL software window fails validation: the interpreter
     marks it finished before the commit attempt, and the runner must
     revive it to re-run the window (regression: it used to die holding
     its context, deadlocking the joiner). Racy counter increments under
     the CRuby-baseline options make that last-commit failure deterministic
     on the simulator's fixed interleaving. *)
  let source =
    {|counter = [0]
sums = Array.new(4, 0.0)
ths = []
t = 0
while t < 4
  ths << Thread.new(t) do |tid|
    x = 0.0
    i = 0
    while i < 400
      counter[0] += 1
      x += 1.5
      i += 1
    end
    sums[tid] = x
  end
  t += 1
end
ths.each { |th| th.join }
puts sums[0] + sums[1] + sums[2] + sums[3]|}
  in
  List.iter
    (fun scheme ->
      let r =
        Tutil.run_source ~scheme ~opts:Rvm.Options.cruby_baseline source
      in
      Alcotest.(check string)
        ("completes under " ^ Core.Scheme.to_string scheme)
        "2400.0\n" r.Core.Runner.output)
    fallback_schemes

(* --- the property the subsystem exists for ----------------------------- *)

let test_stm_fallback_beats_gil_fallback () =
  let machine = Harness.Figures.hybrid_machine in
  let w = Option.get (Workloads.Workload.find "mg") in
  let source = w.source ~threads:4 ~size:Workloads.Size.Test in
  let dyn =
    Tutil.run_source ~machine ~scheme:Core.Scheme.Htm_dynamic source
  in
  let hyb = Tutil.run_source ~machine ~scheme:Core.Scheme.Hybrid source in
  Alcotest.(check string) "same guest result" dyn.Core.Runner.output
    hyb.Core.Runner.output;
  (* same guest work in fewer cycles = higher committed-instruction
     throughput when capacity aborts retry in software instead of
     serialising on the GIL *)
  Alcotest.(check bool)
    (Printf.sprintf "hybrid %d cycles < GIL-fallback %d cycles"
       hyb.Core.Runner.wall_cycles dyn.Core.Runner.wall_cycles)
    true
    (hyb.Core.Runner.wall_cycles < dyn.Core.Runner.wall_cycles);
  let s = hyb.Core.Runner.stm_stats in
  Alcotest.(check bool) "software transactions committed" true
    (s.Stm.commits > 0);
  (* the abort report attributes the fallback causes *)
  let fbs = Obs.Sites.fallbacks hyb.Core.Runner.abort_sites in
  Alcotest.(check bool) "stm fallbacks attributed" true
    (List.exists (fun (target, _, n) -> target = "stm" && n > 0) fbs);
  let dyn_fbs = Obs.Sites.fallbacks dyn.Core.Runner.abort_sites in
  Alcotest.(check bool) "gil fallbacks attributed" true
    (List.exists (fun (target, _, n) -> target = "gil" && n > 0) dyn_fbs)

let suite =
  [
    Alcotest.test_case "redo log isolation and publish" `Quick
      test_redo_isolation;
    Alcotest.test_case "per-read validation aborts" `Quick
      test_per_read_validation_abort;
    Alcotest.test_case "commit-time validation" `Quick
      test_commit_time_validation;
    Alcotest.test_case "software read aborts hardware writer" `Quick
      test_sw_read_aborts_hw_writer;
    Alcotest.test_case "software commit aborts hardware reader" `Quick
      test_sw_commit_aborts_hw_reader;
    Alcotest.test_case "hardware commit fails software validation" `Quick
      test_hw_commit_fails_sw_validation;
    Alcotest.test_case "commit clock and read-only commits" `Quick
      test_commit_bumps_clock;
    Alcotest.test_case "per-site retry budgets" `Quick test_budget;
    Alcotest.test_case "scheme names round-trip" `Quick
      test_scheme_round_trip;
    Alcotest.test_case "serializability fuzz vs global-lock reference" `Quick
      test_fuzz_serializable;
    Alcotest.test_case "cg equivalence under stm/hybrid" `Slow test_equiv_cg;
    Alcotest.test_case "is equivalence under stm/hybrid" `Slow test_equiv_is;
    Alcotest.test_case "mg equivalence under stm/hybrid" `Slow test_equiv_mg;
    Alcotest.test_case "webrick equivalence under gc pressure" `Slow
      test_equiv_under_gc_pressure;
    Alcotest.test_case "equivalence under capacity pressure" `Slow
      test_equiv_capacity_pressure;
    Alcotest.test_case "thread finishing inside a failing window" `Quick
      test_finish_inside_failing_window;
    Alcotest.test_case "stm fallback beats gil fallback" `Slow
      test_stm_fallback_beats_gil_fallback;
  ]
