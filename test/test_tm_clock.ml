(* The pluggable commit-clock subsystem and the subscription-policy model:
   GV5/GV6 bookkeeping unit tests, engine-level semantics of the delayed
   (GV5) publication protocol, the store-layout invariant that keeps the
   GIL word, the clock cell and its stat mirrors on distinct cache lines,
   the GV5/GV6 serializability fuzz against the same shadow executor the
   GV1 engine is checked with, and the lazy-subscription safety ablation:
   plain [Lazy] must demonstrably corrupt a GC-heavy run, [Lazy_safe] (on
   a machine advertising the hardware fix) and [Eager] must not. *)

open Htm_sim

let machine = { Machine.zec12 with name = "clock-test"; n_cores = 4; smt = 1 }

let mk ?clock () =
  let store = Store.create ~dummy:0 ~line_cells:machine.line_cells 256 in
  let htm = Htm.create machine store in
  for ctx = 0 to 3 do
    Htm.set_occupied htm ctx true
  done;
  let clock =
    match clock with Some s -> Tm_clock.create s | None -> Tm_clock.create Tm_clock.Gv1
  in
  let stm = Stm.create ~clock ~mk_clock:(fun n -> n) htm in
  let region = Store.reserve_aligned store (8 * machine.line_cells) in
  (store, htm, stm, region)

(* --- bookkeeping unit tests -------------------------------------------- *)

let test_scheme_names () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Tm_clock.scheme_to_string s ^ " round-trips")
        true
        (Tm_clock.scheme_of_string (Tm_clock.scheme_to_string s) = s))
    [ Tm_clock.Gv1; Tm_clock.Gv5; Tm_clock.Gv6 ];
  Alcotest.(check bool) "eager alias" true
    (Tm_clock.scheme_of_string "eager" = Tm_clock.Gv1);
  Alcotest.(check bool) "delayed alias" true
    (Tm_clock.scheme_of_string "delayed" = Tm_clock.Gv5);
  Alcotest.(check bool) "adaptive alias" true
    (Tm_clock.scheme_of_string "ADAPTIVE" = Tm_clock.Gv6);
  (match Tm_clock.scheme_of_string "gv9" with
  | _ -> Alcotest.fail "bogus clock scheme accepted"
  | exception Invalid_argument _ -> ());
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Subscription.to_string s ^ " round-trips")
        true
        (Subscription.of_string (Subscription.to_string s) = s))
    [ Subscription.Eager; Subscription.Lazy; Subscription.Lazy_safe ];
  match Subscription.of_string "sometimes" with
  | _ -> Alcotest.fail "bogus subscription policy accepted"
  | exception Invalid_argument _ -> ()

let test_fixed_scheme_counters () =
  let gv1 = Tm_clock.create Tm_clock.Gv1 in
  Alcotest.(check bool) "gv1 effective" true
    (Tm_clock.effective gv1 = Tm_clock.Gv1);
  Tm_clock.note_cell_write gv1;
  Tm_clock.note_commit gv1;
  Alcotest.(check int) "gv1 bumps" 1 (Tm_clock.bumps gv1);
  Alcotest.(check bool) "gv1 failure needs no catch-up bump" false
    (Tm_clock.note_validation_failure gv1);
  let gv5 = Tm_clock.create Tm_clock.Gv5 in
  Alcotest.(check bool) "gv5 effective" true
    (Tm_clock.effective gv5 = Tm_clock.Gv5);
  Tm_clock.note_skip gv5;
  Tm_clock.note_commit gv5;
  Alcotest.(check int) "gv5 skipped" 1 (Tm_clock.skipped gv5);
  Alcotest.(check int) "gv5 never bumps the cell" 0 (Tm_clock.bumps gv5);
  Alcotest.(check bool) "gv5 failure demands the catch-up bump" true
    (Tm_clock.note_validation_failure gv5);
  Alcotest.(check int) "fixed schemes never switch" 0
    (Tm_clock.switches gv1 + Tm_clock.switches gv5)

(* Drive one full adaptation window with [fails] failures out of the
   window size, the rest commits. *)
let feed_window c fails =
  let open Tm_clock in
  for _ = 1 to fails do
    ignore (note_validation_failure c)
  done;
  for _ = 1 to 64 - fails do
    note_commit c
  done

let test_gv6_adaptation () =
  let c = Tm_clock.create Tm_clock.Gv6 in
  Alcotest.(check bool) "gv6 starts optimistic (gv5 side)" true
    (Tm_clock.effective c = Tm_clock.Gv5);
  (* half the window failing: flip to the eager protocol *)
  feed_window c 32;
  Alcotest.(check bool) "high failure rate flips to gv1" true
    (Tm_clock.effective c = Tm_clock.Gv1);
  Alcotest.(check int) "one switch counted" 1 (Tm_clock.switches c);
  (* the hysteresis band: a third failing is neither flip threshold *)
  feed_window c 21;
  Alcotest.(check bool) "hysteresis band holds the regime" true
    (Tm_clock.effective c = Tm_clock.Gv1);
  Alcotest.(check int) "no switch inside the band" 1 (Tm_clock.switches c);
  (* a quiet window flips back *)
  feed_window c 4;
  Alcotest.(check bool) "low failure rate flips back to gv5" true
    (Tm_clock.effective c = Tm_clock.Gv5);
  Alcotest.(check int) "second switch counted" 2 (Tm_clock.switches c)

(* --- engine-level GV5 semantics ---------------------------------------- *)

let test_gv1_commit_kills_subscriber () =
  let store, htm, stm, a = mk () in
  let cell = Stm.clock_cell stm in
  let before = Store.get store cell in
  Htm.tbegin htm ~ctx:1 ~rollback:(fun _ -> ());
  ignore (Htm.read htm ~ctx:1 cell);
  Stm.begin_ stm ~ctx:0 ~rollback:(fun _ -> ());
  Htm.write htm ~ctx:0 a 5;
  assert (Stm.validate stm ~ctx:0 < 0);
  Stm.commit stm ~ctx:0;
  Alcotest.(check bool) "gv1 commit rewrote the clock cell" true
    (Store.get store cell <> before);
  Alcotest.(check bool) "subscribed hardware window killed" false
    (Htm.in_txn htm 1);
  Htm.clear_pending_abort htm 1;
  Alcotest.(check int) "cell write counted" 1
    (Tm_clock.bumps (Stm.clock stm))

let test_gv5_commit_spares_subscriber () =
  let store, htm, stm, a = mk ~clock:Tm_clock.Gv5 () in
  let cell = Stm.clock_cell stm in
  let before = Store.get store cell in
  Htm.tbegin htm ~ctx:1 ~rollback:(fun _ -> ());
  ignore (Htm.read htm ~ctx:1 cell);
  (* a concurrent software reader whose snapshot predates the commit *)
  Stm.begin_ stm ~ctx:2 ~rollback:(fun _ -> ());
  Stm.begin_ stm ~ctx:0 ~rollback:(fun _ -> ());
  Htm.write htm ~ctx:0 a 5;
  assert (Stm.validate stm ~ctx:0 < 0);
  Stm.commit stm ~ctx:0;
  Alcotest.(check int) "gv5 commit left the clock cell alone" before
    (Store.get store cell);
  Alcotest.(check bool) "subscribed hardware window survives" true
    (Htm.in_txn htm 1);
  Htm.tend htm ~ctx:1;
  (* ...but the committed line is stamped ahead of the old snapshot, so
     the delayed protocol's tax lands on the software reader *)
  (match Htm.read htm ~ctx:2 a with
  | _ -> Alcotest.fail "stale-snapshot read of a gv5-stamped line must abort"
  | exception Htm.Abort_now Txn.Validation -> ());
  Stm.clear_pending_abort stm 2;
  let c = Stm.clock stm in
  Alcotest.(check int) "skip counted" 1 (Tm_clock.skipped c);
  Alcotest.(check int) "no cell write counted" 0 (Tm_clock.bumps c)

(* --- store layout invariant (satellite 2) ------------------------------ *)

let test_store_line_distinctness () =
  (* engine level: the three reserved cells sit on three distinct lines *)
  let store, _, stm, _ = mk () in
  let lines =
    List.map (Store.line_of store)
      [ Stm.clock_cell stm; Stm.bumps_cell stm; Stm.skipped_cell stm ]
  in
  Alcotest.(check int) "engine cells on distinct lines" 3
    (List.length (List.sort_uniq compare lines));
  (* runner level: the GIL word joins the set, still all distinct — a
     subscription to one word must never alias traffic on another *)
  let cfg =
    Core.Runner.config ~scheme:Core.Scheme.Hybrid Harness.Figures.hybrid_machine
  in
  let r = Core.Runner.create cfg ~source:"puts 1" in
  let store = r.Core.Runner.vm.Rvm.Vm.store in
  let stm =
    match r.Core.Runner.stm with
    | Some s -> s
    | None -> Alcotest.fail "hybrid runner has no stm"
  in
  let lines =
    List.map (Store.line_of store)
      [
        r.Core.Runner.vm.Rvm.Vm.g_gil;
        Stm.clock_cell stm;
        Stm.bumps_cell stm;
        Stm.skipped_cell stm;
      ]
  in
  Alcotest.(check int) "gil word, clock cell and stat cells on 4 lines" 4
    (List.length (List.sort_uniq compare lines))

(* --- GV5/GV6 serializability fuzz (satellite 3) ------------------------
   The same differential harness as test_stm's: random hardware and
   software transactions plus plain accesses over a small region, checked
   against a single-global-lock shadow executor. The delayed protocols
   change WHEN software commits publish the clock, so they must not
   change WHAT any reader can observe. *)

type fuzz_ctx = {
  mutable mode : [ `Idle | `Hw | `Sw ];
  pend : (int, int) Hashtbl.t;
}

let fuzz_serializable clock_scheme seed steps =
  let n_ctx = 4 in
  let rng = Random.State.make [| seed |] in
  let store = Store.create ~dummy:0 ~line_cells:machine.line_cells 256 in
  let htm = Htm.create machine store in
  for ctx = 0 to n_ctx - 1 do
    Htm.set_occupied htm ctx true
  done;
  let stm =
    Stm.create ~clock:(Tm_clock.create clock_scheme) ~mk_clock:(fun n -> n) htm
  in
  let lines = 8 in
  let region = Store.reserve_aligned store (lines * machine.line_cells) in
  let cells = lines * machine.line_cells in
  let shadow = Array.make cells 0 in
  let ctxs =
    Array.init n_ctx (fun _ -> { mode = `Idle; pend = Hashtbl.create 32 })
  in
  let reset c =
    c.mode <- `Idle;
    Hashtbl.reset c.pend
  in
  let sync () =
    Array.iteri
      (fun i c ->
        let live =
          match c.mode with
          | `Idle -> true
          | `Hw -> Htm.in_txn htm i
          | `Sw -> Stm.in_txn stm i
        in
        if not live then begin
          reset c;
          Htm.clear_pending_abort htm i;
          Stm.clear_pending_abort stm i
        end)
      ctxs
  in
  let expected c addr =
    match Hashtbl.find_opt c.pend addr with
    | Some v -> v
    | None -> shadow.(addr - region)
  in
  let check_store_matches step =
    if Htm.active_count htm = 0 then
      for i = 0 to cells - 1 do
        if Store.get store (region + i) <> shadow.(i) then
          Alcotest.fail
            (Printf.sprintf
               "%s seed %d step %d: store[%d] = %d, reference executor has %d"
               (Tm_clock.scheme_to_string clock_scheme)
               seed step i
               (Store.get store (region + i))
               shadow.(i))
      done
  in
  for step = 1 to steps do
    let ctx = Random.State.int rng n_ctx in
    let c = ctxs.(ctx) in
    let addr = region + Random.State.int rng cells in
    let v = Random.State.int rng 1000 in
    (match c.mode with
    | `Idle -> (
        match Random.State.int rng 10 with
        | 0 | 1 ->
            Htm.tbegin htm ~ctx ~rollback:(fun _ -> ());
            c.mode <- `Hw
        | 2 | 3 ->
            Stm.begin_ stm ~ctx ~rollback:(fun _ -> ());
            c.mode <- `Sw
        | 4 | 5 | 6 ->
            Htm.write htm ~ctx addr v;
            shadow.(addr - region) <- v
        | _ ->
            let got = Htm.read htm ~ctx addr in
            if got <> shadow.(addr - region) then
              Alcotest.fail
                (Printf.sprintf
                   "%s seed %d step %d: committed read %d, reference %d"
                   (Tm_clock.scheme_to_string clock_scheme)
                   seed step got
                   (shadow.(addr - region))))
    | `Hw | `Sw -> (
        match Random.State.int rng 10 with
        | 0 | 1 | 2 | 3 -> (
            match Htm.read htm ~ctx addr with
            | got ->
                let want = expected c addr in
                if got <> want then
                  Alcotest.fail
                    (Printf.sprintf
                       "%s seed %d step %d ctx %d: transactional read %d, \
                        serial order requires %d"
                       (Tm_clock.scheme_to_string clock_scheme)
                       seed step ctx got want)
            | exception Htm.Abort_now _ -> reset c)
        | 4 | 5 | 6 -> (
            match Htm.write htm ~ctx addr v with
            | () -> Hashtbl.replace c.pend addr v
            | exception Htm.Abort_now _ -> reset c)
        | 7 | 8 -> (
            match c.mode with
            | `Hw -> (
                match Htm.tend htm ~ctx with
                | () ->
                    Hashtbl.iter (fun a v -> shadow.(a - region) <- v) c.pend;
                    reset c
                | exception Htm.Abort_now _ -> reset c)
            | `Sw ->
                let line = Stm.validate stm ~ctx in
                if line < 0 then begin
                  Stm.commit stm ~ctx;
                  Hashtbl.iter (fun a v -> shadow.(a - region) <- v) c.pend
                end
                else Stm.abort stm ~ctx ~line Txn.Validation;
                reset c
            | `Idle -> assert false)
        | _ ->
            (match c.mode with
            | `Hw -> (
                try Htm.tabort htm ~ctx Txn.Explicit
                with Htm.Abort_now _ -> ())
            | `Sw -> Stm.abort stm ~ctx Txn.Explicit
            | `Idle -> assert false);
            reset c));
    Htm.clear_pending_abort htm ctx;
    Stm.clear_pending_abort stm ctx;
    sync ();
    if step mod 64 = 0 then check_store_matches step
  done;
  for ctx = 0 to n_ctx - 1 do
    (match ctxs.(ctx).mode with
    | `Hw when Htm.in_txn htm ctx -> (
        try Htm.tabort htm ~ctx Txn.Explicit with Htm.Abort_now _ -> ())
    | `Sw when Stm.in_txn stm ctx -> Stm.abort stm ~ctx Txn.Explicit
    | _ -> ());
    Htm.clear_pending_abort htm ctx;
    Stm.clear_pending_abort stm ctx
  done;
  check_store_matches steps;
  let s = Stm.stats stm in
  Alcotest.(check bool)
    (Printf.sprintf "%s seed %d exercised software commits"
       (Tm_clock.scheme_to_string clock_scheme)
       seed)
    true (s.Stm.commits > 0);
  let c = Stm.clock stm in
  if clock_scheme = Tm_clock.Gv5 then
    Alcotest.(check int)
      (Printf.sprintf "gv5 seed %d wrote no clock cell" seed)
      0 (Tm_clock.bumps c)

let test_fuzz_gv5 () =
  List.iter (fun seed -> fuzz_serializable Tm_clock.Gv5 seed 10_000) [ 7; 21; 42 ]

let test_fuzz_gv6 () =
  List.iter (fun seed -> fuzz_serializable Tm_clock.Gv6 seed 10_000) [ 7; 21; 42 ]

(* --- guest-level clock-scheme equivalence ------------------------------ *)

let gc_opts = { Rvm.Options.default with Rvm.Options.heap_slots = 6_000 }

let webrick_run ?(machine = Harness.Figures.hybrid_machine) ?clock ?subscription
    () =
  let w = Option.get (Workloads.Workload.find "webrick") in
  let o =
    Harness.Exp.run
      (Harness.Exp.point ?clock ?subscription ~opts:gc_opts ~workload:w
         ~machine ~scheme:Core.Scheme.Hybrid ~threads:4
         ~size:Workloads.Size.Test ())
  in
  o.Harness.Exp.result

let test_equiv_clock_schemes () =
  (* the clock scheme changes publication cost, never guest semantics *)
  let reference = webrick_run ~clock:Tm_clock.Gv1 () in
  Alcotest.(check bool) "reference served requests" true
    (reference.Core.Runner.requests_completed > 0);
  Alcotest.(check bool) "reference hit the software fallback" true
    (reference.Core.Runner.stm_stats.Stm.commits > 0);
  List.iter
    (fun clock ->
      let r = webrick_run ~clock () in
      Alcotest.(check string)
        ("webrick output under " ^ Tm_clock.scheme_to_string clock)
        reference.Core.Runner.output r.Core.Runner.output;
      Alcotest.(check int)
        ("webrick requests under " ^ Tm_clock.scheme_to_string clock)
        reference.Core.Runner.requests_completed
        r.Core.Runner.requests_completed)
    [ Tm_clock.Gv5; Tm_clock.Gv6 ]

(* --- the lazy-subscription safety ablation (satellite 3) --------------- *)

let test_lazy_subscription_unsafe () =
  (* plain lazy subscription on stock hardware: GC can run around live
     hardware windows (nothing killed them), and a zombie window's abort
     restores pre-GC values over collector-rebuilt state. The run must
     observably diverge from the eager reference — corrupted guest state,
     a stuck VM or a guest-level failure all count; silent agreement
     means the hazard model is broken, so the test fails CLOSED. *)
  let reference = webrick_run ~subscription:Subscription.Eager () in
  Alcotest.(check bool) "reference ran gc" true
    (reference.Core.Runner.gc_runs > 0);
  match webrick_run ~subscription:Subscription.Lazy () with
  | r ->
      if
        r.Core.Runner.output = reference.Core.Runner.output
        && r.Core.Runner.requests_completed
           = reference.Core.Runner.requests_completed
      then
        Alcotest.fail
          "lazy subscription silently matched the eager reference — the \
           modeled hazard never fired"
  | exception Core.Runner.Stuck _ -> ()
  | exception Core.Runner.Guest_failure _ -> ()

let test_lazy_safe_is_safe () =
  (* the Dice et al. fix: same lazy window, but GC entry aborts every
     hardware transaction first — guest-visible behaviour must match the
     eager reference exactly *)
  let reference = webrick_run ~subscription:Subscription.Eager () in
  let r =
    webrick_run ~machine:Harness.Figures.clock_safe_machine
      ~subscription:Subscription.Lazy_safe ()
  in
  Alcotest.(check string) "lazy-safe output matches eager"
    reference.Core.Runner.output r.Core.Runner.output;
  Alcotest.(check int) "lazy-safe requests match eager"
    reference.Core.Runner.requests_completed
    r.Core.Runner.requests_completed

let test_lazy_safe_needs_capability () =
  let cfg =
    Core.Runner.config ~scheme:Core.Scheme.Hybrid
      ~subscription:Subscription.Lazy_safe Harness.Figures.hybrid_machine
  in
  match Core.Runner.create cfg ~source:"puts 1" with
  | _ -> Alcotest.fail "lazy-safe accepted on a machine without the capability"
  | exception Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "scheme and policy names round-trip" `Quick
      test_scheme_names;
    Alcotest.test_case "gv1/gv5 counters" `Quick test_fixed_scheme_counters;
    Alcotest.test_case "gv6 adaptation and hysteresis" `Quick
      test_gv6_adaptation;
    Alcotest.test_case "gv1 commit kills the subscribed window" `Quick
      test_gv1_commit_kills_subscriber;
    Alcotest.test_case "gv5 commit spares the subscribed window" `Quick
      test_gv5_commit_spares_subscriber;
    Alcotest.test_case "gil/clock/stat cells on distinct lines" `Quick
      test_store_line_distinctness;
    Alcotest.test_case "gv5 serializability fuzz" `Quick test_fuzz_gv5;
    Alcotest.test_case "gv6 serializability fuzz" `Quick test_fuzz_gv6;
    Alcotest.test_case "webrick equivalence across clock schemes" `Slow
      test_equiv_clock_schemes;
    Alcotest.test_case "lazy subscription corrupts a gc-heavy run" `Slow
      test_lazy_subscription_unsafe;
    Alcotest.test_case "lazy-safe matches the eager reference" `Slow
      test_lazy_safe_is_safe;
    Alcotest.test_case "lazy-safe requires the machine capability" `Quick
      test_lazy_safe_needs_capability;
  ]
